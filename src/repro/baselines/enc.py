"""An ENC-style baseline (Saldanha, Villa, Brayton, S-V, TCAD 1994).

ENC targets the same *partial* encoding problem as PICOLA — minimize
the product terms implementing the complete constraint set — but does
it by keeping the two-level logic minimizer in its inner loop: from a
seed encoding it repeatedly tries code swaps/moves, re-minimizes the
encoded constraints, and keeps any move that lowers the real cube
count.  Quality is therefore comparable to PICOLA's, while the run
time is dominated by the O(moves x constraints) minimizations — the
paper's observation that "ENC is not practical for medium and large
examples" (and is reported to fail on ``scf``) falls straight out of
this structure, which our harness reproduces with an evaluation
budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..encoding.codes import Encoding
from ..encoding.constraints import ConstraintSet
from ..encoding.evaluate import cubes_for_constraint
from ..obs import resolve_tracer
from ..runtime import Budget, BudgetExceeded, faults
from .simple import natural_encoding

__all__ = ["EncResult", "EncBudgetExceeded", "enc_encode"]


class EncBudgetExceeded(BudgetExceeded):
    """The minimization budget ran out before reaching a local optimum.

    Mirrors the failure the paper reports for ENC on the largest
    benchmark (scf).
    """


@dataclass
class EncResult:
    encoding: Encoding
    total_cubes: int
    minimizations: int
    converged: bool


def _total_cubes(
    enc: Encoding,
    cset: ConstraintSet,
    counter: List[int],
    max_minimizations: int,
    budget: Optional[Budget],
) -> int:
    faults.trip("enc.minimize")
    total = 0
    for c in cset.nontrivial():
        counter[0] += 1
        if counter[0] > max_minimizations:
            raise EncBudgetExceeded(
                f"exceeded {max_minimizations} constraint minimizations"
            )
        if budget is not None:
            budget.tick(where="enc_encode")
        total += cubes_for_constraint(enc, c)
    return total


def enc_encode(
    cset: ConstraintSet,
    nv: Optional[int] = None,
    *,
    seed: int = 0,
    max_minimizations: int = 20000,
    max_passes: int = 8,
    strict: bool = False,
    budget: Optional[Budget] = None,
    tracer=None,
) -> EncResult:
    """Iterative minimizer-in-the-loop encoding.

    ``strict=True`` re-raises :class:`EncBudgetExceeded`; by default a
    budget blowout returns the best encoding found with
    ``converged=False`` (the harness reports such rows as failures,
    like the paper does for scf).  An external ``budget`` (wall-clock
    deadline / shared node counter) is *not* degraded here — its
    :class:`~repro.runtime.BudgetExceeded` propagates so the harness
    can mark the cell as timed out rather than merely non-converged.
    """
    tracer = resolve_tracer(tracer)
    symbols = list(cset.symbols)
    if nv is None:
        nv = cset.min_code_length()
    rng = random.Random(seed)
    counter = [0]
    enc = natural_encoding(symbols, nv)
    codes: Dict[str, int] = dict(enc.codes)
    passes = 0

    try:
        with tracer.span(
            "enc/encode", symbols=len(symbols), nv=nv
        ):
            best_total = _total_cubes(
                enc, cset, counter, max_minimizations, budget
            )
            for _ in range(max_passes):
                passes += 1
                improved = False
                # candidate moves: all pair swaps plus moves to free
                # codes, in a seeded random order (ENC's pairwise
                # interchange)
                moves: List[Tuple[str, Optional[str], int]] = []
                for i, a in enumerate(symbols):
                    for b in symbols[i + 1 :]:
                        moves.append((a, b, -1))
                used = set(codes.values())
                for a in symbols:
                    for free in range(1 << nv):
                        if free not in used:
                            moves.append((a, None, free))
                rng.shuffle(moves)
                for a, b, free in moves:
                    old_a = codes[a]
                    old_b = codes[b] if b is not None else None
                    if b is not None:
                        codes[a], codes[b] = old_b, old_a
                    else:
                        if free in set(codes.values()):
                            continue
                        codes[a] = free
                    trial = Encoding(symbols, codes, nv)
                    total = _total_cubes(
                        trial, cset, counter, max_minimizations, budget
                    )
                    if total < best_total:
                        best_total = total
                        improved = True
                    else:
                        codes[a] = old_a
                        if b is not None:
                            codes[b] = old_b
                if not improved:
                    break
        converged = True
    except EncBudgetExceeded:
        if strict:
            raise
        converged = False
    finally:
        tracer.count("enc.minimizations", counter[0])
        tracer.count("enc.passes", passes)

    final = Encoding(symbols, codes, nv)
    total = sum(
        cubes_for_constraint(final, c) for c in cset.nontrivial()
    )
    return EncResult(
        encoding=final,
        total_cubes=total,
        minimizations=counter[0],
        converged=converged,
    )
