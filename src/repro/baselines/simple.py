"""Trivial minimum-length encoders: natural, Gray, seeded random."""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..encoding.codes import Encoding
from ..encoding.constraints import ConstraintSet
from ..runtime import InfeasibleError

__all__ = ["natural_encoding", "gray_encoding", "random_encoding",
           "best_random_encoding"]


def _nv(symbols: Sequence[str], nv: Optional[int]) -> int:
    if nv is None:
        nv = max(1, (len(symbols) - 1).bit_length())
    if (1 << nv) < len(symbols):
        raise InfeasibleError("code length too small")
    return nv


def natural_encoding(
    symbols: Sequence[str], nv: Optional[int] = None
) -> Encoding:
    """Symbols numbered in order of appearance."""
    nv = _nv(symbols, nv)
    return Encoding.from_code_list(symbols, list(range(len(symbols))), nv)


def gray_encoding(
    symbols: Sequence[str], nv: Optional[int] = None
) -> Encoding:
    """Successive symbols get adjacent (Hamming-distance-1) codes."""
    nv = _nv(symbols, nv)
    return Encoding.from_code_list(
        symbols, [i ^ (i >> 1) for i in range(len(symbols))], nv
    )


def random_encoding(
    symbols: Sequence[str], nv: Optional[int] = None, seed: int = 0
) -> Encoding:
    nv = _nv(symbols, nv)
    rng = random.Random(seed)
    codes = rng.sample(range(1 << nv), len(symbols))
    return Encoding.from_code_list(symbols, codes, nv)


def best_random_encoding(
    cset: ConstraintSet,
    nv: Optional[int] = None,
    trials: int = 32,
    seed: int = 0,
) -> Encoding:
    """Best of ``trials`` random encodings by satisfied-constraint count."""
    nv = _nv(cset.symbols, nv)
    best: Optional[Encoding] = None
    best_score = -1
    for t in range(trials):
        enc = random_encoding(cset.symbols, nv, seed=seed * 7919 + t)
        score = sum(
            c.weight
            for c in cset.nontrivial()
            if enc.satisfies(c.symbols)
        )
        if score > best_score:
            best_score = score
            best = enc
    assert best is not None
    return best
