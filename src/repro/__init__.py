"""PICOLA reproduction: face-constrained encoding with minimum code length.

This package reproduces, end to end, the system of

    M. Martinez, M. J. Avedillo, J. M. Quintana, J. L. Huertas,
    "An Algorithm for Face-Constrained Encoding of Symbols Using Minimum
    Code Length", DATE 1999.

It contains the PICOLA algorithm itself (:mod:`repro.core`), every
substrate it needs — a positional-cube kernel (:mod:`repro.cubes`), an
ESPRESSO-style two-level minimizer (:mod:`repro.espresso`), a KISS2 FSM
substrate with a benchmark library (:mod:`repro.fsm`), the encoding /
constraint framework (:mod:`repro.encoding`) — plus the NOVA- and
ENC-style baselines (:mod:`repro.baselines`), the state-assignment tool
of the paper's Section 4 (:mod:`repro.stateassign`) and the experiment
harness regenerating Tables I and II (:mod:`repro.harness`).

Since 1.1.0 every encoder is also reachable through the unified
solver registry (:mod:`repro.solvers`) and instrumented with the
zero-dependency observability layer (:mod:`repro.obs`).  Since 1.2.0
the conventions those layers rely on — budget threading, span
hygiene, the error taxonomy, determinism, registry conformance — are
enforced by a built-in static analyzer (:mod:`repro.analysis`,
``picola lint``).

Quickstart::

    from repro import FaceConstraint, picola_encode

    symbols = [f"s{i}" for i in range(1, 9)]
    constraints = [FaceConstraint({"s1", "s2"}),
                   FaceConstraint({"s2", "s6", "s8"})]
    result = picola_encode(symbols, constraints)
    print(result.encoding.as_table())

or, uniformly across solvers::

    from repro import get_solver

    result = get_solver("picola").solve(symbols, constraints)
    print(result.encoding.as_table(), result.seconds, result.nodes)

Since 1.6.0 the same encodes are available as a request/response
service (:mod:`repro.api`, :mod:`repro.service`, ``picola serve``)::

    from repro import EncodeRequest, encode

    request = EncodeRequest.build(symbols, constraints, solver="picola")
    response = encode(request)
    print(response.status, response.n_bits)
"""

from .api import EncodeRequest, EncodeResponse, encode, encode_many
from .core import PicolaOptions, PicolaResult, picola_encode
from .cubes import Cover, Space
from .encoding import (
    ConstraintSet,
    Encoding,
    EvaluationReport,
    FaceConstraint,
    derive_face_constraints,
    evaluate_encoding,
)
from .espresso import Pla, espresso, exact_minimize
from .fsm import Fsm, load_benchmark, parse_kiss
from .obs import (
    ConsoleSink,
    JsonlSink,
    MemorySink,
    NullTracer,
    NULL_TRACER,
    ProfileReport,
    Span,
    Tracer,
    get_tracer,
    profile_report,
    resolve_tracer,
    set_tracer,
)
from .runtime import (
    Budget,
    BudgetExceeded,
    Checkpoint,
    CheckpointError,
    Deadline,
    InfeasibleError,
    InvalidSpecError,
    InvariantViolation,
    ParseError,
    ReproError,
    SolverTimeout,
)
from .solvers import (
    EncodeResult,
    Solver,
    get_solver,
    list_solvers,
    register_solver,
)
from .stateassign import assign_states

__version__ = "1.8.0"

__all__ = [
    "EncodeRequest",
    "EncodeResponse",
    "encode",
    "encode_many",
    "PicolaOptions",
    "PicolaResult",
    "picola_encode",
    "Cover",
    "Space",
    "ConstraintSet",
    "Encoding",
    "EvaluationReport",
    "FaceConstraint",
    "derive_face_constraints",
    "evaluate_encoding",
    "Pla",
    "espresso",
    "exact_minimize",
    "Fsm",
    "load_benchmark",
    "parse_kiss",
    "assign_states",
    "EncodeResult",
    "Solver",
    "get_solver",
    "list_solvers",
    "register_solver",
    "ConsoleSink",
    "JsonlSink",
    "MemorySink",
    "NullTracer",
    "NULL_TRACER",
    "ProfileReport",
    "Span",
    "Tracer",
    "get_tracer",
    "profile_report",
    "resolve_tracer",
    "set_tracer",
    "Budget",
    "BudgetExceeded",
    "Checkpoint",
    "CheckpointError",
    "Deadline",
    "InfeasibleError",
    "InvalidSpecError",
    "InvariantViolation",
    "ParseError",
    "ReproError",
    "SolverTimeout",
    "__version__",
]
