"""Parallel experiment engine: fan benchmark units out to a process pool.

Every harness driver (Table I/II rows, sweep ``seed/fsm`` cells,
ablation cells) is a sequence of fully independent *units*; this module
schedules them over worker processes and hands the results back
**deterministically in submission order**, regardless of completion
order — so ``--jobs 4`` produces byte-identical tables and JSON to
``--jobs 1``.

Design contract (mirrors the serial path exactly):

* each unit runs under :func:`~repro.runtime.isolation.run_isolated`
  *inside the worker*, with its own Budget/Deadline, so crashes,
  timeouts and budget blows come back as classified FAILED / TIMEOUT
  / BUDGET outcomes instead of poisoning the pool;
* checkpoint writes stay in the parent: the drivers consume the
  generator returned by :func:`run_units` in submission order and call
  ``Checkpoint.mark_done`` after each merged unit, so a killed
  parallel run resumes like a killed serial one;
* armed faults (:mod:`repro.runtime.faults`) are snapshotted and
  re-armed in each worker, so fault-injection tests exercise the
  parallel path too (hit counting is per worker process);
* worker tracer events (spans / counters / gauges) are captured in a
  :class:`~repro.obs.MemorySink` and re-parented into the parent
  tracer under a synthetic ``parallel/unit`` span, keeping
  ``--trace`` / ``--profile`` coherent;
* when the pool cannot start (sandboxed environment, missing
  semaphores, unpicklable work), the engine degrades gracefully to
  the serial in-process path.

``jobs`` semantics everywhere: ``1`` (default) is the serial path,
``0`` means one worker per CPU core, ``N > 1`` a fixed pool size.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, Optional, Tuple

from ..obs import MemorySink, Tracer, resolve_tracer, set_tracer
from ..runtime import InvalidSpecError, faults
from ..runtime.isolation import Outcome, classify_failure, run_isolated

__all__ = ["Unit", "resolve_jobs", "run_units", "UNIT_SPAN"]

#: name of the synthetic parent span adopted worker spans hang under
UNIT_SPAN = "parallel/unit"

#: how long the pool warm-up probe may take before degrading to serial
_START_TIMEOUT = 60.0


@dataclass(frozen=True)
class Unit:
    """One schedulable unit of work: a picklable module-level callable
    plus its arguments.  ``key`` doubles as checkpoint key and trace
    label."""

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Map the ``--jobs`` value to a worker count (0 = cpu_count)."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise InvalidSpecError("jobs must be >= 0 (0 = all CPU cores)")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


# ----------------------------------------------------------------------
# worker side (these run in the pool processes; must stay module-level
# so they are picklable by reference under any start method)
# ----------------------------------------------------------------------
def _worker_init(fault_specs) -> None:
    """Pool initializer: neutralize inherited parent state.

    A forked worker inherits the parent's process-wide tracer (whose
    sinks may hold the parent's open ``--trace`` file descriptor) and
    its armed-fault registry; re-arm faults from the snapshot instead
    so counting starts fresh per worker, and drop the tracer — each
    unit installs its own.
    """
    set_tracer(None)
    faults.reset()
    for site, exc, key, after, times in fault_specs:
        faults.arm(site, exc, key=key, after=after, times=times)


def _probe() -> int:
    """Warm-up task proving the pool can actually run work."""
    return os.getpid()


def _run_unit(
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    kwargs: Dict[str, Any],
    label: str,
    trace: bool,
) -> Tuple[Outcome, Optional[Dict[str, Any]]]:
    """Run one unit inside a worker under the fault boundary.

    Returns the classified :class:`Outcome` plus, when tracing, the
    worker's raw span events and counter/gauge aggregates for the
    parent to adopt.
    """
    sink: Optional[MemorySink] = None
    tracer: Optional[Tracer] = None
    if trace:
        sink = MemorySink()
        tracer = Tracer(sink)
    set_tracer(tracer)
    try:
        outcome = run_isolated(fn, *args, label=label, **kwargs)
    finally:
        set_tracer(None)
    obs: Optional[Dict[str, Any]] = None
    if tracer is not None and sink is not None:
        obs = {
            "spans": sink.spans,
            "counters": tracer.counters(),
            "gauges": tracer.gauges(),
        }
    return outcome, obs


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def _start_pool(workers: int) -> Optional[ProcessPoolExecutor]:
    """Spin up and probe a pool; ``None`` means degrade to serial."""
    specs = [
        (f.site, f.exc, f.key, f.after, f.times)
        for f in faults.active()
    ]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: use the default
        ctx = multiprocessing.get_context()
    executor: Optional[ProcessPoolExecutor] = None
    try:
        executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(specs,),
        )
        executor.submit(_probe).result(timeout=_START_TIMEOUT)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException:  # repro: noqa[RPA003] -- pool start-up failure is the documented degrade-to-serial path, not a swallowed benchmark error
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        return None
    return executor


def _run_serial(units: Iterable[Unit]) -> Iterator[Outcome]:
    """The ``--jobs 1`` path: identical to the historical drivers."""
    for unit in units:
        yield run_isolated(
            unit.fn, *unit.args, label=unit.key, **unit.kwargs
        )


def _adopt_worker_trace(
    tracer: Any, key: str, outcome: Outcome, obs: Dict[str, Any]
) -> None:
    """Re-parent one worker's trace into the parent tracer."""
    if not getattr(tracer, "enabled", False):
        return
    root = {
        "type": "span",
        "name": UNIT_SPAN,
        "seconds": outcome.seconds,
        "attrs": {"label": key, "status": outcome.status},
    }
    tracer.adopt(
        obs["spans"],
        counters=obs["counters"],
        gauges=obs["gauges"],
        root=root,
    )


def run_units(
    units: Iterable[Unit],
    *,
    jobs: int = 1,
    tracer: Optional[Any] = None,
) -> Iterator[Outcome]:
    """Run ``units`` and yield one :class:`Outcome` per unit, in
    submission order (completion order never leaks out).

    ``jobs <= 1`` — or a pool that fails to start — runs everything
    serially in-process, byte-for-byte identical to the historical
    drivers.  The caller merges each yielded outcome (and writes its
    checkpoint entry) before pulling the next one, so parent-side
    state advances deterministically even while workers complete out
    of order.
    """
    units = list(units)
    tracer = resolve_tracer(tracer)
    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(units) <= 1:
        yield from _run_serial(units)
        return
    executor = _start_pool(min(n_jobs, len(units)))
    if executor is None:  # graceful degradation
        yield from _run_serial(units)
        return
    trace = bool(getattr(tracer, "enabled", False))
    try:
        futures = [
            executor.submit(
                _run_unit, u.fn, u.args, u.kwargs, u.key, trace
            )
            for u in units
        ]
        for unit, future in zip(units, futures):
            try:
                outcome, obs = future.result()
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # repro: noqa[RPA003] -- pool/pickling breakage maps to a classified FAILED outcome, same contract as run_isolated
                status, message = classify_failure(exc)
                outcome = Outcome(
                    label=unit.key, status=status, error=message
                )
                obs = None
            if obs is not None:
                _adopt_worker_trace(tracer, unit.key, outcome, obs)
            yield outcome
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
