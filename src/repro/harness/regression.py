"""Regression gate: compare an experiment run against a golden record.

Everything in this repository is deterministic (seeded encoders,
seeded benchmark generator), so a fresh run of the quick Table I
should reproduce the stored golden JSON exactly; the comparator still
takes a tolerance so intentional algorithm changes can be reviewed as
bounded drifts rather than hard failures.

Usage::

    from repro.harness import run_table1, QUICK_FSMS
    from repro.harness.regression import compare_to_golden

    report = run_table1(QUICK_FSMS, include_enc=False)
    drifts = compare_to_golden(report, "expected/table1_quick.json")

The test-suite keeps the golden file honest
(``tests/test_regression_gate.py``).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Union

from .serialize import to_dict
from .table1 import Table1Report

__all__ = ["Drift", "compare_to_golden", "write_golden"]

#: repository-level directory holding golden records
GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[3] / "expected"


@dataclass
class Drift:
    """One numeric difference between a run and its golden record."""

    key: str
    golden: Union[int, float]
    measured: Union[int, float]

    @property
    def relative(self) -> float:
        if self.golden == 0:
            return float("inf") if self.measured else 0.0
        return abs(self.measured - self.golden) / abs(self.golden)

    def __str__(self) -> str:
        return f"{self.key}: golden={self.golden} measured={self.measured}"


def _flatten(prefix: str, value: Any, out: Dict[str, Any]) -> None:
    if isinstance(value, dict):
        for k, v in value.items():
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, out)
    elif isinstance(value, list):
        for i, v in enumerate(value):
            _flatten(f"{prefix}[{i}]", v, out)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        out[prefix] = value


def write_golden(report: Any, path: Union[str, pathlib.Path]) -> None:
    """Record a run as the new golden reference."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = to_dict(report)
    _strip_timings(data)
    path.write_text(json.dumps(data, indent=2, sort_keys=True))


def _strip_timings(data: Any) -> None:
    """Wall-clock values are machine-dependent; never golden-compare."""
    if isinstance(data, dict):
        for key in [k for k in data if k in ("seconds", "time_ratios")]:
            del data[key]
        for value in data.values():
            _strip_timings(value)
    elif isinstance(data, list):
        for value in data:
            _strip_timings(value)


def compare_to_golden(
    report: Any,
    path: Union[str, pathlib.Path],
    tolerance: float = 0.0,
) -> List[Drift]:
    """All numeric drifts beyond ``tolerance`` (relative).

    Returns an empty list when the run reproduces the golden record.
    Raises FileNotFoundError when no golden record exists yet.
    """
    path = pathlib.Path(path)
    golden = json.loads(path.read_text())
    measured = to_dict(report)
    _strip_timings(golden)
    _strip_timings(measured)
    flat_g: Dict[str, Any] = {}
    flat_m: Dict[str, Any] = {}
    _flatten("", golden, flat_g)
    _flatten("", measured, flat_m)
    drifts: List[Drift] = []
    for key in sorted(set(flat_g) | set(flat_m)):
        g = flat_g.get(key)
        m = flat_m.get(key)
        if g is None or m is None:
            drifts.append(Drift(key, g if g is not None else float("nan"),
                                 m if m is not None else float("nan")))
            continue
        drift = Drift(key, g, m)
        if drift.relative > tolerance:
            drifts.append(drift)
    return drifts
