"""Machine-readable serialization of the experiment reports.

``to_dict``/``to_json`` for the Table I / Table II / ablation / sweep
reports, so downstream tooling (plots, regression tracking) can
consume runs without scraping the rendered text tables.  The CLI
exposes it as ``--json <path>`` on each experiment command.

Partial runs serialize faithfully: failed rows carry their ``status``
and ``error`` fields, degraded cells stay ``null``, and the summary
statistics only aggregate the rows that completed — so a report with
one crashed benchmark still round-trips through JSON.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .ablation import AblationReport
from .sweep import SeedSweepReport
from .table1 import Table1Report
from .table2 import Table2Report

__all__ = ["to_dict", "to_json"]


def _table1(report: Table1Report) -> Dict[str, Any]:
    return {
        "experiment": "table1",
        "rows": [r.to_dict() for r in report.rows],
        "summary": {
            "picola_wins": report.picola_wins,
            "nova_wins": report.nova_wins,
            "ties": report.ties,
            "nova_overhead": report.nova_overhead,
            "failed": report.n_failed,
        },
    }


def _table2(report: Table2Report) -> Dict[str, Any]:
    return {
        "experiment": "table2",
        "rows": [
            dict(
                r.to_dict(),
                time_ratios={m: r.time_ratio(m) for m in r.sizes},
            )
            for r in report.rows
        ],
        "summary": {
            # the union of methods over every ok row, in first-seen
            # order — the first ok row alone can have TIMEOUT holes
            # or (in a shard) lack methods other rows report
            "totals": {
                m: report.total_size(m)
                for m in dict.fromkeys(
                    m for r in report.rows if r.ok for m in r.sizes
                )
            },
            "failed": report.n_failed,
        },
    }


def _ablation(report: AblationReport) -> Dict[str, Any]:
    return {
        "experiment": "ablation",
        "variants": list(report.variants),
        "cubes": {f: dict(v) for f, v in report.cubes.items()},
        "satisfied": {
            f: dict(v) for f, v in report.satisfied.items()
        },
        "seconds": {
            f: dict(v) for f, v in report.seconds.items()
        },
        "nodes": {f: dict(v) for f, v in report.nodes.items()},
        "cell_status": {
            f: dict(v) for f, v in report.cell_status.items()
        },
        "failures": dict(report.failures),
        "totals": {v: report.total(v) for v in report.variants},
    }


def _sweep(report: SeedSweepReport) -> Dict[str, Any]:
    return {
        "experiment": "sweep",
        "fsms": list(report.fsms),
        "outcomes": [
            {
                "seed": o.seed,
                "total_picola": o.total_picola,
                "total_nova": o.total_nova,
                "picola_wins": o.picola_wins,
                "nova_wins": o.nova_wins,
                "ties": o.ties,
                "nova_overhead": o.nova_overhead,
            }
            for o in report.outcomes
        ],
        "failures": {
            f"{seed}/{fsm}": reason
            for (seed, fsm), reason in report.failures.items()
        },
        "skipped_seeds": list(report.skipped_seeds),
        "summary": {
            "mean_overhead": report.mean_overhead(),
            "overhead_stddev": report.overhead_stddev(),
            "failed": report.n_failed,
            "skipped_seeds": len(report.skipped_seeds),
        },
    }


def to_dict(report: Any) -> Dict[str, Any]:
    """Dispatch on report type."""
    from ..fuzz.runner import FuzzReport  # late: avoids a package cycle

    if isinstance(report, FuzzReport):
        return dict({"experiment": "fuzz"}, **report.as_dict())
    if isinstance(report, Table1Report):
        return _table1(report)
    if isinstance(report, Table2Report):
        return _table2(report)
    if isinstance(report, AblationReport):
        return _ablation(report)
    if isinstance(report, SeedSweepReport):
        return _sweep(report)
    raise TypeError(f"unknown report type {type(report).__name__}")


def to_json(report: Any, indent: int = 2) -> str:
    return json.dumps(to_dict(report), indent=indent)
