"""Machine-readable serialization of the experiment reports.

``to_dict``/``to_json`` for the Table I / Table II / ablation reports,
so downstream tooling (plots, regression tracking) can consume runs
without scraping the rendered text tables.  The CLI exposes it as
``--json <path>`` on each experiment command.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .ablation import AblationReport
from .table1 import Table1Report
from .table2 import Table2Report

__all__ = ["to_dict", "to_json"]


def _table1(report: Table1Report) -> Dict[str, Any]:
    return {
        "experiment": "table1",
        "rows": [
            {
                "fsm": r.fsm,
                "constraints": r.n_constraints,
                "cubes": {
                    "nova": r.cubes_nova,
                    "enc": r.cubes_enc,
                    "picola": r.cubes_picola,
                },
                "enc_attempted": r.enc_attempted,
                "seconds": {
                    "nova": r.seconds_nova,
                    "enc": r.seconds_enc,
                    "picola": r.seconds_picola,
                },
                "paper": {
                    "constraints": r.paper_constraints,
                    "nova": r.paper_nova,
                    "picola": r.paper_picola,
                },
            }
            for r in report.rows
        ],
        "summary": {
            "picola_wins": report.picola_wins,
            "nova_wins": report.nova_wins,
            "ties": report.ties,
            "nova_overhead": report.nova_overhead,
        },
    }


def _table2(report: Table2Report) -> Dict[str, Any]:
    return {
        "experiment": "table2",
        "rows": [
            {
                "fsm": r.fsm,
                "sizes": dict(r.sizes),
                "seconds": dict(r.seconds),
                "time_ratios": {
                    m: r.time_ratio(m) for m in r.sizes
                },
            }
            for r in report.rows
        ],
        "summary": {
            "totals": {
                m: report.total_size(m)
                for m in (report.rows[0].sizes if report.rows else {})
            },
        },
    }


def _ablation(report: AblationReport) -> Dict[str, Any]:
    return {
        "experiment": "ablation",
        "variants": list(report.variants),
        "cubes": {f: dict(v) for f, v in report.cubes.items()},
        "satisfied": {
            f: dict(v) for f, v in report.satisfied.items()
        },
        "totals": {v: report.total(v) for v in report.variants},
    }


def to_dict(report: Any) -> Dict[str, Any]:
    """Dispatch on report type."""
    if isinstance(report, Table1Report):
        return _table1(report)
    if isinstance(report, Table2Report):
        return _table2(report)
    if isinstance(report, AblationReport):
        return _ablation(report)
    raise TypeError(f"unknown report type {type(report).__name__}")


def to_json(report: Any, indent: int = 2) -> str:
    return json.dumps(to_dict(report), indent=indent)
