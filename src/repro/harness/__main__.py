"""``python -m repro.harness`` == the ``picola`` CLI."""

import sys

from .cli import main

sys.exit(main())
