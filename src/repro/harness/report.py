"""Plain-text table rendering shared by the experiment harnesses."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

__all__ = ["render_table", "fmt"]

Cell = Union[str, int, float, None]


def fmt(value: Cell, ratio: bool = False) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
    footer: Optional[Sequence[Cell]] = None,
) -> str:
    """Align columns; first column left, the rest right."""
    table: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    if footer is not None:
        table.append([fmt(c) for c in footer])
    widths = [len(h) for h in headers]
    for row in table:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(cells):
            if i == 0:
                out.append(cell.ljust(widths[i]))
            else:
                out.append(cell.rjust(widths[i]))
        return "  ".join(out).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    for i, row in enumerate(table):
        if footer is not None and i == len(table) - 1:
            parts.append(line(["-" * w for w in widths]))
        parts.append(line(row))
    return "\n".join(parts)
