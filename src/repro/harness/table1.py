"""Table I: cubes to implement the constraints under min-length codes.

For every benchmark FSM the paper's Table I reports the number of
group constraints of the derived input-encoding problem and the number
of product terms needed to implement the *complete* constraint set
under the minimum-length encodings produced by NOVA, ENC and PICOLA.
This module regenerates those rows (plus the summary statistics quoted
in the text: win/loss counts against NOVA and the global cost ratio).

ENC runs under a minimization budget; a row whose budget blows up is
reported as ``fails`` — the paper reports exactly that for ``scf``.

Every benchmark runs behind the :mod:`repro.runtime` fault boundary:
an FSM whose solvers crash or exceed the optional per-solver
``timeout`` yields a ``FAILED (<reason>)`` row (or a ``TIMEOUT`` ENC
cell) while the rest of the table completes, and a ``checkpoint``
path makes long runs resumable after a kill (failed rows are
checkpointed with their status; ``retry_failed`` re-runs them).
Rows are independent, so ``jobs`` fans them out over the
:mod:`repro.harness.parallel` process pool with deterministic,
submission-order merging.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..encoding import derive_face_constraints, evaluate_encoding
from ..fsm import BENCHMARKS, TABLE1_FSMS, load_benchmark
from ..runtime import Budget, BudgetExceeded, Checkpoint, SolverTimeout, faults
from ..runtime.checkpoint import resumable
from ..solvers import get_solver
from .parallel import Unit, run_units
from .report import render_table
from .shard import ShardSpec, StreamWriter, build_meta, resolve_shard

__all__ = ["Table1Row", "Table1Report", "run_table1", "QUICK_FSMS"]

#: small/medium subset used by --quick runs and the test-suite
QUICK_FSMS = [
    "bbara", "ex3", "ex5", "ex7", "lion9", "mark1", "opus",
    "train11", "s8", "s27", "dk16", "donfile", "ex2", "keyb", "tma",
]

#: FSMs on which ENC's minimizer-in-the-loop is given up as
#: impractical (mirrors the paper: "ENC is not practical for medium
#: and large examples ... it fails to solve problem scf")
ENC_SKIP = {"scf", "tbk", "kirkman", "s820", "s832", "s510", "planet"}


@dataclass
class Table1Row:
    fsm: str
    n_constraints: int = 0
    cubes_nova: Optional[int] = None
    cubes_enc: Optional[int] = None  # None when failed or not attempted
    enc_attempted: bool = False
    cubes_picola: Optional[int] = None
    seconds_nova: Optional[float] = None
    seconds_enc: Optional[float] = None
    seconds_picola: Optional[float] = None
    nodes_nova: Optional[int] = None
    nodes_enc: Optional[int] = None
    nodes_picola: Optional[int] = None
    paper_constraints: Optional[int] = None
    paper_nova: Optional[int] = None
    paper_picola: Optional[int] = None
    #: "ok" | "timeout" | "budget" | "failed" — row-level outcome
    status: str = "ok"
    #: diagnostic for non-ok rows
    error: Optional[str] = None
    #: ENC-cell outcome when the row itself is ok ("timeout"/"budget")
    enc_status: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def failure_reason(self) -> str:
        if self.status in ("timeout", "budget"):
            return self.status
        return (self.error or "error").split(":", 1)[0]

    # -- checkpoint / JSON payload -------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "fsm": self.fsm,
            "constraints": self.n_constraints,
            "cubes": {
                "nova": self.cubes_nova,
                "enc": self.cubes_enc,
                "picola": self.cubes_picola,
            },
            "enc_attempted": self.enc_attempted,
            "seconds": {
                "nova": self.seconds_nova,
                "enc": self.seconds_enc,
                "picola": self.seconds_picola,
            },
            "nodes": {
                "nova": self.nodes_nova,
                "enc": self.nodes_enc,
                "picola": self.nodes_picola,
            },
            "paper": {
                "constraints": self.paper_constraints,
                "nova": self.paper_nova,
                "picola": self.paper_picola,
            },
            "status": self.status,
            "error": self.error,
            "enc_status": self.enc_status,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Table1Row":
        cubes = data.get("cubes", {})
        seconds = data.get("seconds", {})
        nodes = data.get("nodes", {})
        paper = data.get("paper", {})
        return cls(
            fsm=data["fsm"],
            n_constraints=data.get("constraints", 0),
            cubes_nova=cubes.get("nova"),
            cubes_enc=cubes.get("enc"),
            enc_attempted=data.get("enc_attempted", False),
            cubes_picola=cubes.get("picola"),
            seconds_nova=seconds.get("nova"),
            seconds_enc=seconds.get("enc"),
            seconds_picola=seconds.get("picola"),
            nodes_nova=nodes.get("nova"),
            nodes_enc=nodes.get("enc"),
            nodes_picola=nodes.get("picola"),
            paper_constraints=paper.get("constraints"),
            paper_nova=paper.get("nova"),
            paper_picola=paper.get("picola"),
            status=data.get("status", "ok"),
            error=data.get("error"),
            enc_status=data.get("enc_status"),
        )


def _comparable(rows: Sequence[Table1Row]) -> List[Table1Row]:
    return [
        r for r in rows
        if r.ok and r.cubes_nova is not None
        and r.cubes_picola is not None
    ]


@dataclass
class Table1Report:
    rows: List[Table1Row] = field(default_factory=list)

    # -- summary statistics the paper quotes ---------------------------
    @property
    def picola_wins(self) -> int:
        return sum(
            1 for r in _comparable(self.rows)
            if r.cubes_picola < r.cubes_nova
        )

    @property
    def nova_wins(self) -> int:
        return sum(
            1 for r in _comparable(self.rows)
            if r.cubes_nova < r.cubes_picola
        )

    @property
    def ties(self) -> int:
        return sum(
            1 for r in _comparable(self.rows)
            if r.cubes_nova == r.cubes_picola
        )

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.rows if not r.ok)

    @property
    def nova_overhead(self) -> float:
        """How much more expensive NOVA is overall (paper: ~11%)."""
        rows = _comparable(self.rows)
        total_picola = sum(r.cubes_picola for r in rows)
        total_nova = sum(r.cubes_nova for r in rows)
        if total_picola == 0:
            return 0.0
        return (total_nova - total_picola) / total_picola

    def render(self, profile: bool = False) -> str:
        """Text table; ``profile=True`` adds per-row time/node columns."""
        headers = [
            "FSM", "const", "NOVA", "ENC", "PICOLA",
            "paper:const", "paper:NOVA", "paper:PICOLA",
        ]
        if profile:
            headers += [
                "t:NOVA", "t:PICOLA", "n:NOVA", "n:PICOLA",
            ]
        rows = []
        for r in self.rows:
            if not r.ok:
                cells: List[object] = [
                    r.fsm, f"FAILED ({r.failure_reason})",
                    None, None, None,
                    r.paper_constraints, r.paper_nova, r.paper_picola,
                ]
                if profile:
                    cells += [None, None, None, None]
                rows.append(cells)
                continue
            if r.cubes_enc is not None:
                enc_cell: object = r.cubes_enc
            elif r.enc_status in ("timeout", "budget"):
                enc_cell = r.enc_status.upper()
            elif r.enc_attempted:
                enc_cell = "fails"
            else:
                enc_cell = None
            cells = [
                r.fsm, r.n_constraints, r.cubes_nova,
                enc_cell,
                r.cubes_picola,
                r.paper_constraints, r.paper_nova, r.paper_picola,
            ]
            if profile:
                cells += [
                    r.seconds_nova, r.seconds_picola,
                    r.nodes_nova, r.nodes_picola,
                ]
            rows.append(cells)
        ok_rows = _comparable(self.rows)
        footer = [
            "total",
            sum(r.n_constraints for r in ok_rows),
            sum(r.cubes_nova for r in ok_rows),
            sum(
                r.cubes_enc for r in ok_rows
                if r.cubes_enc is not None
            ),
            sum(r.cubes_picola for r in ok_rows),
            None, None, None,
        ]
        if profile:
            footer += [
                sum(r.seconds_nova or 0.0 for r in ok_rows),
                sum(r.seconds_picola or 0.0 for r in ok_rows),
                sum(r.nodes_nova or 0 for r in ok_rows),
                sum(r.nodes_picola or 0 for r in ok_rows),
            ]
        table = render_table(
            headers, rows,
            title="Table I - constraint implementation cubes "
                  "(minimum-length encodings)",
            footer=footer,
        )
        summary = (
            f"\nPICOLA wins {self.picola_wins}, NOVA wins "
            f"{self.nova_wins}, ties {self.ties} "
            f"(paper: PICOLA 16, NOVA 7)\n"
            f"NOVA overhead vs PICOLA: {100 * self.nova_overhead:.1f}% "
            f"(paper: ~11%)"
        )
        if self.n_failed:
            failed = ", ".join(
                f"{r.fsm} ({r.failure_reason})"
                for r in self.rows if not r.ok
            )
            summary += f"\n{self.n_failed} benchmark(s) failed: {failed}"
        return table + summary


def _table1_row(
    name: str,
    *,
    include_enc: bool,
    enc_budget: int,
    seed: int,
    timeout: Optional[float],
) -> Table1Row:
    """Compute one Table I row (runs inside the fault boundary)."""
    faults.trip("table1.row", key=name)
    fsm = load_benchmark(name)
    cset = derive_face_constraints(fsm)
    spec = BENCHMARKS.get(name)

    picola = get_solver("picola").solve(
        cset, budget=Budget(seconds=timeout)
    )
    cubes_picola = evaluate_encoding(
        picola.encoding, cset
    ).total_cubes

    nova = get_solver("nova").solve(
        cset, options={"seed": seed}, budget=Budget(seconds=timeout)
    )
    cubes_nova = evaluate_encoding(nova.encoding, cset).total_cubes

    cubes_enc: Optional[int] = None
    t_enc: Optional[float] = None
    nodes_enc: Optional[int] = None
    enc_status: Optional[str] = None
    enc_attempted = include_enc
    if include_enc and name not in ENC_SKIP:
        t0 = time.perf_counter()
        try:
            enc = get_solver("enc").solve(
                cset,
                options={
                    "seed": seed, "max_minimizations": enc_budget,
                },
                budget=Budget(seconds=timeout),
            )
        except SolverTimeout:
            enc_status = "timeout"
        except BudgetExceeded:
            enc_status = "budget"
        else:
            nodes_enc = enc.nodes
            if enc.stats["converged"]:
                cubes_enc = evaluate_encoding(
                    enc.encoding, cset
                ).total_cubes
        t_enc = time.perf_counter() - t0

    return Table1Row(
        fsm=name,
        n_constraints=len(cset.nontrivial()),
        cubes_nova=cubes_nova,
        cubes_enc=cubes_enc,
        enc_attempted=enc_attempted,
        cubes_picola=cubes_picola,
        seconds_nova=nova.seconds,
        seconds_enc=t_enc,
        seconds_picola=picola.seconds,
        nodes_nova=nova.nodes,
        nodes_enc=nodes_enc,
        nodes_picola=picola.nodes,
        paper_constraints=spec.paper_constraints if spec else None,
        paper_nova=spec.paper_cubes_nova if spec else None,
        paper_picola=spec.paper_cubes_picola if spec else None,
        enc_status=enc_status,
    )


def run_table1(
    fsms: Optional[Sequence[str]] = None,
    *,
    include_enc: bool = True,
    enc_budget: int = 6000,
    seed: int = 1,
    verbose: bool = False,
    timeout: Optional[float] = None,
    checkpoint: Optional[Union[str, pathlib.Path, Checkpoint]] = None,
    jobs: int = 1,
    retry_failed: bool = False,
    shard: Optional[Union[str, ShardSpec]] = None,
    stream: Optional[Union[str, pathlib.Path]] = None,
) -> Table1Report:
    """Regenerate Table I over the given FSM list (default: all rows).

    ``timeout`` is a per-solver wall-clock limit in seconds; a PICOLA
    or NOVA timeout fails the row gracefully, an ENC timeout only
    marks the ENC cell.  ``checkpoint`` (path or
    :class:`~repro.runtime.Checkpoint`) records each row — failed
    ones included — so an interrupted run resumes from the last
    finished benchmark; ``retry_failed`` forces checkpointed failures
    to re-run.  ``jobs`` fans rows out to worker processes
    (0 = all cores) with results merged in submission order, so the
    report is identical to a serial run.

    ``shard`` (``"K/N"`` or a :class:`ShardSpec`) restricts the run to
    its deterministic slice of the row list so N hosts can split one
    table; the checkpoint then carries a self-describing shard meta
    block and ``picola merge`` recombines the N files into the full
    report.  ``stream`` appends one JSON line per completed row to a
    results file as it finishes.
    """
    if fsms is None:
        fsms = TABLE1_FSMS
    spec = resolve_shard(shard)
    all_names = list(fsms)
    meta: Optional[Dict[str, Any]] = None
    if spec is not None or stream is not None:
        meta = build_meta(
            "table1", all_names,
            {
                "include_enc": include_enc, "enc_budget": enc_budget,
                "seed": seed, "timeout": timeout,
            },
            spec,
        )
    names = spec.partition(all_names) if spec is not None else all_names
    ckpt: Optional[Checkpoint] = None
    if checkpoint is not None:
        ckpt = (
            checkpoint if isinstance(checkpoint, Checkpoint)
            else Checkpoint(
                checkpoint, experiment="table1",
                meta=meta if spec is not None else None,
            )
        )
    writer = (
        StreamWriter(stream, meta) if stream is not None else None
    )
    report = Table1Report()
    resumed: Dict[str, Any] = {}
    units: List[Unit] = []
    for name in names:
        payload = resumable(ckpt, name, retry_failed)
        if payload is not None:
            resumed[name] = payload
        else:
            units.append(Unit(
                key=name, fn=_table1_row, args=(name,),
                kwargs=dict(
                    include_enc=include_enc, enc_budget=enc_budget,
                    seed=seed, timeout=timeout,
                ),
            ))
    outcomes = run_units(units, jobs=jobs)
    try:
        for name in names:
            if name in resumed:
                row = Table1Row.from_dict(resumed[name])
                report.rows.append(row)
                if writer is not None:
                    writer.emit_cell(name, row.to_dict(), resumed=True)
                if verbose:
                    print(
                        f"{name}: resumed from checkpoint", flush=True
                    )
                continue
            outcome = next(outcomes)
            if outcome.ok:
                row = outcome.value
            else:
                row = Table1Row(
                    fsm=name, status=outcome.status, error=outcome.error
                )
            report.rows.append(row)
            if ckpt is not None:
                ckpt.mark_done(name, row.to_dict())
            if writer is not None:
                writer.emit_cell(name, row.to_dict())
            if verbose:
                if row.ok:
                    print(
                        f"{name}: const={row.n_constraints} "
                        f"nova={row.cubes_nova} enc={row.cubes_enc} "
                        f"picola={row.cubes_picola}", flush=True,
                    )
                else:
                    print(
                        f"{name}: FAILED ({row.failure_reason})",
                        flush=True,
                    )
    finally:
        if writer is not None:
            writer.close()
    return report
