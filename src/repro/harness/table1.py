"""Table I: cubes to implement the constraints under min-length codes.

For every benchmark FSM the paper's Table I reports the number of
group constraints of the derived input-encoding problem and the number
of product terms needed to implement the *complete* constraint set
under the minimum-length encodings produced by NOVA, ENC and PICOLA.
This module regenerates those rows (plus the summary statistics quoted
in the text: win/loss counts against NOVA and the global cost ratio).

ENC runs under a minimization budget; a row whose budget blows up is
reported as ``fails`` — the paper reports exactly that for ``scf``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import enc_encode, nova_encode
from ..core import PicolaOptions, picola_encode
from ..encoding import ConstraintSet, derive_face_constraints, evaluate_encoding
from ..fsm import BENCHMARKS, TABLE1_FSMS, load_benchmark
from .report import render_table

__all__ = ["Table1Row", "Table1Report", "run_table1", "QUICK_FSMS"]

#: small/medium subset used by --quick runs and the test-suite
QUICK_FSMS = [
    "bbara", "ex3", "ex5", "ex7", "lion9", "mark1", "opus",
    "train11", "s8", "s27", "dk16", "donfile", "ex2", "keyb", "tma",
]

#: FSMs on which ENC's minimizer-in-the-loop is given up as
#: impractical (mirrors the paper: "ENC is not practical for medium
#: and large examples ... it fails to solve problem scf")
ENC_SKIP = {"scf", "tbk", "kirkman", "s820", "s832", "s510", "planet"}


@dataclass
class Table1Row:
    fsm: str
    n_constraints: int
    cubes_nova: int
    cubes_enc: Optional[int]  # None when failed or not attempted
    enc_attempted: bool
    cubes_picola: int
    seconds_nova: float
    seconds_enc: Optional[float]
    seconds_picola: float
    paper_constraints: Optional[int] = None
    paper_nova: Optional[int] = None
    paper_picola: Optional[int] = None


@dataclass
class Table1Report:
    rows: List[Table1Row] = field(default_factory=list)

    # -- summary statistics the paper quotes ---------------------------
    @property
    def picola_wins(self) -> int:
        return sum(1 for r in self.rows if r.cubes_picola < r.cubes_nova)

    @property
    def nova_wins(self) -> int:
        return sum(1 for r in self.rows if r.cubes_nova < r.cubes_picola)

    @property
    def ties(self) -> int:
        return sum(1 for r in self.rows if r.cubes_nova == r.cubes_picola)

    @property
    def nova_overhead(self) -> float:
        """How much more expensive NOVA is overall (paper: ~11%)."""
        total_picola = sum(r.cubes_picola for r in self.rows)
        total_nova = sum(r.cubes_nova for r in self.rows)
        if total_picola == 0:
            return 0.0
        return (total_nova - total_picola) / total_picola

    def render(self) -> str:
        headers = [
            "FSM", "const", "NOVA", "ENC", "PICOLA",
            "paper:const", "paper:NOVA", "paper:PICOLA",
        ]
        rows = []
        for r in self.rows:
            if r.cubes_enc is not None:
                enc_cell: object = r.cubes_enc
            elif r.enc_attempted:
                enc_cell = "fails"
            else:
                enc_cell = None
            rows.append([
                r.fsm, r.n_constraints, r.cubes_nova,
                enc_cell,
                r.cubes_picola,
                r.paper_constraints, r.paper_nova, r.paper_picola,
            ])
        footer = [
            "total",
            sum(r.n_constraints for r in self.rows),
            sum(r.cubes_nova for r in self.rows),
            sum(r.cubes_enc for r in self.rows if r.cubes_enc is not None),
            sum(r.cubes_picola for r in self.rows),
            None, None, None,
        ]
        table = render_table(
            headers, rows,
            title="Table I - constraint implementation cubes "
                  "(minimum-length encodings)",
            footer=footer,
        )
        summary = (
            f"\nPICOLA wins {self.picola_wins}, NOVA wins "
            f"{self.nova_wins}, ties {self.ties} "
            f"(paper: PICOLA 16, NOVA 7)\n"
            f"NOVA overhead vs PICOLA: {100 * self.nova_overhead:.1f}% "
            f"(paper: ~11%)"
        )
        return table + summary


def run_table1(
    fsms: Optional[Sequence[str]] = None,
    *,
    include_enc: bool = True,
    enc_budget: int = 6000,
    seed: int = 1,
    verbose: bool = False,
) -> Table1Report:
    """Regenerate Table I over the given FSM list (default: all rows)."""
    if fsms is None:
        fsms = TABLE1_FSMS
    report = Table1Report()
    for name in fsms:
        fsm = load_benchmark(name)
        cset = derive_face_constraints(fsm)
        spec = BENCHMARKS.get(name)

        t0 = time.perf_counter()
        picola = picola_encode(cset)
        t_picola = time.perf_counter() - t0
        cubes_picola = evaluate_encoding(
            picola.encoding, cset
        ).total_cubes

        t0 = time.perf_counter()
        nova = nova_encode(cset, seed=seed)
        t_nova = time.perf_counter() - t0
        cubes_nova = evaluate_encoding(nova.encoding, cset).total_cubes

        cubes_enc: Optional[int] = None
        t_enc: Optional[float] = None
        enc_attempted = include_enc
        if include_enc and name not in ENC_SKIP:
            t0 = time.perf_counter()
            enc = enc_encode(
                cset, seed=seed, max_minimizations=enc_budget
            )
            t_enc = time.perf_counter() - t0
            if enc.converged:
                cubes_enc = evaluate_encoding(
                    enc.encoding, cset
                ).total_cubes

        row = Table1Row(
            fsm=name,
            n_constraints=len(cset.nontrivial()),
            cubes_nova=cubes_nova,
            cubes_enc=cubes_enc,
            enc_attempted=enc_attempted,
            cubes_picola=cubes_picola,
            seconds_nova=t_nova,
            seconds_enc=t_enc,
            seconds_picola=t_picola,
            paper_constraints=spec.paper_constraints if spec else None,
            paper_nova=spec.paper_cubes_nova if spec else None,
            paper_picola=spec.paper_cubes_picola if spec else None,
        )
        report.rows.append(row)
        if verbose:
            print(
                f"{name}: const={row.n_constraints} nova={cubes_nova} "
                f"enc={cubes_enc} picola={cubes_picola}", flush=True,
            )
    return report
