"""Command-line interface: ``picola <command>``.

Commands
--------
* ``table1`` — regenerate the paper's Table I (``--quick`` for the
  small/medium subset).
* ``table2`` — regenerate Table II (state assignment sizes/times).
* ``ablation`` — the DESIGN.md ablations.
* ``encode <file.kiss2>`` — state-assign one KISS2 machine and print
  the encoding plus the minimized two-level size.
* ``profile <target>`` — run one state assignment under the tracer
  and print the per-phase timing/counter profile.
* ``bench-list`` — list the registered benchmark machines.
* ``fuzz`` — generative end-to-end fuzzing of the encode pipeline
  (:mod:`repro.fuzz`): seeded workload generators, the classify-never-
  crash oracle, optional fault-hardening, and a committed regression
  corpus (``--replay``).  Exit codes: 0 clean, 1 findings, 2 bad
  usage/configuration.
* ``lint`` — run the project's static invariant checks
  (:mod:`repro.analysis`) over the source tree.
* ``serve`` — run the encoding daemon (:mod:`repro.service.server`):
  an HTTP/JSON front end with a content-addressed result cache,
  micro-batching over the process pool and bounded-queue
  backpressure.
* ``merge`` — combine the shard checkpoint/stream files written by
  ``--shard K/N`` runs on independent hosts into the full report
  (:mod:`repro.harness.merge`), byte-identical to an unsharded run.

Robustness: the experiment commands take ``--timeout SECONDS`` (per
solver), ``--resume PATH`` (JSON checkpoint; created on first use,
reused to skip completed benchmarks — failed ones included, unless
``--retry-failed``) and ``--jobs N`` (process-pool parallelism over
benchmark units, ``0`` = all cores, with deterministic
submission-order merging so output matches a serial run
byte-for-byte).  Multi-host: ``--shard K/N`` deterministically
restricts a run to every Kth benchmark of N (stamping the checkpoint
with a self-describing shard meta block) and ``--stream PATH``
appends one JSON line per completed cell; ``picola merge`` recombines
either kind of file.  Structured failures
(:class:`~repro.runtime.ReproError`) and I/O errors print a one-line
diagnostic and exit with code 2; an experiment that completes but
contains failed rows exits with code 1.

Observability: every command but ``bench-list`` takes ``--trace PATH``
(JSON-lines span/counter events via :class:`~repro.obs.JsonlSink`)
and ``--profile`` (per-phase wall-clock/counter report after the
command output; the table commands additionally grow per-row
time/nodes columns).  Both install a process-wide
:class:`~repro.obs.Tracer` that the solvers pick up through
:func:`~repro.obs.resolve_tracer`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..encoding import derive_face_constraints
from ..fsm import BENCHMARKS, parse_kiss
from ..obs import JsonlSink, Tracer, profile_report, set_tracer
from ..runtime import ReproError, faults
from ..stateassign import assign_states
from .ablation import run_ablation
from .table1 import QUICK_FSMS, run_table1
from .table2 import QUICK_FSMS2, run_table2

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="picola",
        description=(
            "Face-constrained encoding with minimum code length "
            "(DATE 1999 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def nonneg_seconds(text: str) -> float:
        value = float(text)
        if value < 0:
            raise argparse.ArgumentTypeError("must be >= 0")
        return value

    def nonneg_int(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError("must be >= 0")
        return value

    def add_runtime_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--timeout", type=nonneg_seconds, default=None,
            metavar="SECONDS",
            help="per-solver wall-clock limit; blown deadlines "
                 "degrade to TIMEOUT/FAILED cells",
        )
        p.add_argument(
            "--resume", default=None, metavar="PATH",
            help="JSON checkpoint file; completed benchmarks "
                 "(failed ones included) are skipped on re-runs",
        )
        p.add_argument(
            "--retry-failed", action="store_true",
            help="with --resume: re-run benchmarks whose "
                 "checkpointed outcome was a failure",
        )
        p.add_argument(
            "--jobs", type=nonneg_int, default=1, metavar="N",
            help="worker processes for benchmark units (default 1 = "
                 "serial, 0 = all CPU cores); results are merged "
                 "deterministically, output is identical to a "
                 "serial run",
        )
        add_shard_flags(p)

    def add_shard_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--shard", default=None, metavar="K/N",
            help="run only this host's deterministic 1-based slice "
                 "of the benchmark list (every Kth unit of N); "
                 "combine the per-shard --resume checkpoints or "
                 "--stream files with 'picola merge'",
        )
        p.add_argument(
            "--stream", default=None, metavar="PATH",
            help="append one JSON line per completed benchmark to "
                 "PATH as it finishes (tail-able progress; 'picola "
                 "merge --from-stream' rebuilds the report from it)",
        )

    def add_json_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--json", default=None, metavar="PATH",
            help="also write the report as JSON",
        )

    def add_obs_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write tracing events (spans, counters, gauges) as "
                 "JSON-lines to PATH",
        )
        p.add_argument(
            "--profile", action="store_true",
            help="collect per-phase timings/counters and print a "
                 "profile report (tables grow time/nodes columns)",
        )

    p1 = sub.add_parser("table1", help="regenerate Table I")
    p1.add_argument("--quick", action="store_true",
                    help="small/medium FSM subset")
    p1.add_argument("--fsm", nargs="*", default=None,
                    help="explicit FSM list")
    p1.add_argument("--no-enc", action="store_true",
                    help="skip the (slow) ENC baseline")
    add_json_flag(p1)
    add_runtime_flags(p1)
    add_obs_flags(p1)

    p2 = sub.add_parser("table2", help="regenerate Table II")
    p2.add_argument("--quick", action="store_true")
    p2.add_argument("--fsm", nargs="*", default=None)
    add_json_flag(p2)
    add_runtime_flags(p2)
    add_obs_flags(p2)

    p3 = sub.add_parser("ablation", help="PICOLA design ablations")
    p3.add_argument("--fsm", nargs="*", default=None)
    p3.add_argument("--exact", action="store_true",
                    help="add the branch-and-bound reference column")
    add_json_flag(p3)
    add_runtime_flags(p3)
    add_obs_flags(p3)

    p4 = sub.add_parser("encode", help="state-assign a KISS2 file")
    p4.add_argument("kiss", help="path to a .kiss2 file")
    p4.add_argument("--method", default="picola")
    add_obs_flags(p4)

    p5 = sub.add_parser(
        "analyze",
        help="explain a PICOLA run on a benchmark or KISS2 file",
    )
    p5.add_argument("target", help="benchmark name or .kiss2 path")
    add_obs_flags(p5)

    p6 = sub.add_parser(
        "motivation",
        help="code length vs implementation cost trade-off",
    )
    p6.add_argument("target", help="benchmark name or .kiss2 path")
    p6.add_argument("--extra-bits", type=int, default=2)
    add_obs_flags(p6)

    p7 = sub.add_parser(
        "export",
        help="state-assign a machine and write BLIF/Verilog netlists",
    )
    p7.add_argument("target", help="benchmark name or .kiss2 path")
    p7.add_argument("--method", default="picola")
    p7.add_argument("--format", choices=["blif", "verilog", "both"],
                    default="both")
    p7.add_argument("--out", default=".", help="output directory")
    add_obs_flags(p7)

    p8 = sub.add_parser(
        "sweep",
        help="seed-stability sweep of the Table I comparison",
    )
    p8.add_argument("--seeds", type=int, nargs="*", default=[0, 1, 2])
    p8.add_argument("--fsm", nargs="*", default=None)
    add_json_flag(p8)
    add_runtime_flags(p8)
    add_obs_flags(p8)

    p9 = sub.add_parser(
        "profile",
        help="state-assign one machine under the tracer and print "
             "the per-phase profile",
    )
    p9.add_argument("target", help="benchmark name or .kiss2 path")
    p9.add_argument("--method", default="picola",
                    help="state-assignment method")
    add_obs_flags(p9)

    sub.add_parser("bench-list", help="list benchmark machines")

    p11 = sub.add_parser(
        "fuzz",
        help="fuzz the encode pipeline end to end (seeded generators, "
             "verification oracle, fault hardening, corpus replay)",
    )
    p11.add_argument(
        "--solver", default="picola", metavar="NAME",
        help="solver registry entry to fuzz (default: picola)",
    )
    p11.add_argument(
        "--generator", action="append", default=None, metavar="FAMILY",
        help="generator family to draw cases from (repeatable; "
             "default: every registered family)",
    )
    p11.add_argument(
        "--max-examples", type=int, default=100, metavar="N",
        help="cases per campaign (default 100)",
    )
    p11.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="base seed; a campaign is a pure function of "
             "(seed, config)",
    )
    p11.add_argument(
        "--scale", type=int, default=24, metavar="N",
        help="symbol-count ceiling per case (default 24)",
    )
    p11.add_argument(
        "--timeout", type=nonneg_seconds, default=10.0,
        metavar="SECONDS",
        help="per-case budget; blown budgets classify as TIMEOUT "
             "(default 10)",
    )
    p11.add_argument(
        "--jobs", type=nonneg_int, default=1, metavar="N",
        help="worker processes (default 1 = serial, 0 = all cores); "
             "results merge deterministically",
    )
    p11.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="distill findings into DIR as committed regressions "
             "(with --replay: the corpus to replay, default "
             "tests/corpus)",
    )
    p11.add_argument(
        "--replay", action="store_true",
        help="replay the committed corpus instead of generating",
    )
    p11.add_argument(
        "--no-harden", action="store_true",
        help="skip the fault-hardening pass (re-running each case "
             "with faults armed at the budget/oracle seams)",
    )
    add_shard_flags(p11)
    add_json_flag(p11)
    add_obs_flags(p11)

    p13 = sub.add_parser(
        "merge",
        help="combine shard checkpoint/stream files (from --shard "
             "K/N runs) into the full report, byte-identical to an "
             "unsharded run",
    )
    p13.add_argument(
        "files", nargs="+", metavar="FILE",
        help="one shard checkpoint (--resume) or stream (--stream) "
             "file per shard; container format is auto-detected",
    )
    p13.add_argument(
        "--from-stream", action="store_true",
        help="force JSONL stream parsing instead of auto-detection",
    )
    add_json_flag(p13)

    p12 = sub.add_parser(
        "serve",
        help="run the encoding daemon (HTTP/JSON, content-addressed "
             "cache, micro-batching, backpressure)",
    )
    p12.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    p12.add_argument(
        "--port", type=nonneg_int, default=8787,
        help="bind port (default 8787; 0 = ephemeral)",
    )
    p12.add_argument(
        "--jobs", type=nonneg_int, default=1, metavar="N",
        help="worker processes per micro-batch (default 1 = "
             "in-process serial, 0 = all cores)",
    )
    p12.add_argument(
        "--cache-size", type=nonneg_int, default=1024, metavar="N",
        help="result-cache capacity in entries (default 1024, "
             "0 disables caching)",
    )
    p12.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="max queued+in-flight requests before 429s (default 64)",
    )
    p12.add_argument(
        "--batch-wait", type=nonneg_seconds, default=0.01,
        metavar="SECONDS",
        help="micro-batch aggregation window (default 0.01)",
    )
    p12.add_argument(
        "--batch-max", type=int, default=16, metavar="N",
        help="max requests per micro-batch (default 16)",
    )
    p12.add_argument(
        "--default-timeout", type=nonneg_seconds, default=None,
        metavar="SECONDS",
        help="QoS timeout applied to requests that carry none "
             "(default: unlimited)",
    )
    add_obs_flags(p12)

    from ..analysis.cli import add_lint_arguments

    p10 = sub.add_parser(
        "lint",
        help="check the source tree against the repo's static "
             "invariants (budget threading, span hygiene, error "
             "taxonomy, determinism, registry conformance)",
    )
    add_lint_arguments(p10)
    return parser


def _load_target(target: str):
    from ..fsm import BENCHMARKS, load_benchmark

    if target in BENCHMARKS:
        return load_benchmark(target)
    with open(target) as handle:
        return parse_kiss(handle.read(), name=target)


def _maybe_json(report, path: Optional[str]) -> None:
    if path is None:
        return
    from .serialize import to_json

    with open(path, "w") as handle:
        handle.write(to_json(report))
    print(f"wrote {path}")


def _dispatch(args: argparse.Namespace) -> int:
    profile = getattr(args, "profile", False)
    if args.command == "lint":
        from ..analysis.cli import run_lint

        return run_lint(args)
    if args.command == "table1":
        fsms = args.fsm or (QUICK_FSMS if args.quick else None)
        report = run_table1(
            fsms, include_enc=not args.no_enc, verbose=True,
            timeout=args.timeout, checkpoint=args.resume,
            jobs=args.jobs, retry_failed=args.retry_failed,
            shard=args.shard, stream=args.stream,
        )
        print(report.render(profile=profile))
        _maybe_json(report, args.json)
        return 1 if report.n_failed else 0
    elif args.command == "table2":
        fsms = args.fsm or (QUICK_FSMS2 if args.quick else None)
        report = run_table2(
            fsms, verbose=True,
            timeout=args.timeout, checkpoint=args.resume,
            jobs=args.jobs, retry_failed=args.retry_failed,
            shard=args.shard, stream=args.stream,
        )
        print(report.render(profile=profile))
        _maybe_json(report, args.json)
        return 1 if report.n_failed else 0
    elif args.command == "ablation":
        report = run_ablation(
            args.fsm, verbose=True, include_exact=args.exact,
            timeout=args.timeout, checkpoint=args.resume,
            jobs=args.jobs, retry_failed=args.retry_failed,
            shard=args.shard, stream=args.stream,
        )
        print(report.render(profile=profile))
        _maybe_json(report, args.json)
        return 1 if report.n_failed else 0
    elif args.command == "profile":
        fsm = _load_target(args.target)
        result = assign_states(fsm, args.method)
        print(result.summary())
    elif args.command == "encode":
        with open(args.kiss) as handle:
            fsm = parse_kiss(handle.read(), name=args.kiss)
        result = assign_states(fsm, args.method)
        print(result.encoding.as_table())
        print(result.summary())
    elif args.command == "analyze":
        from ..core import analyze_result, picola_encode

        fsm = _load_target(args.target)
        cset = derive_face_constraints(fsm)
        print(
            f"{fsm.name}: {fsm.n_states} states, "
            f"{len(cset.nontrivial())} face constraints, "
            f"nv={cset.min_code_length()}"
        )
        print(analyze_result(picola_encode(cset)).render())
    elif args.command == "motivation":
        from ..encoding import length_tradeoff

        fsm = _load_target(args.target)
        cset = derive_face_constraints(fsm)
        print(f"{fsm.name}: length trade-off")
        for p in length_tradeoff(cset, max_extra_bits=args.extra_bits):
            print(
                f"  nv={p.nv}: satisfied {p.satisfied}/{p.total}, "
                f"cubes={p.cubes}, area~{p.area_proxy}"
            )
    elif args.command == "export":
        import os

        from ..export import assignment_to_blif, assignment_to_verilog

        fsm = _load_target(args.target)
        result = assign_states(fsm, args.method)
        base = os.path.join(args.out, fsm.name.replace("/", "_"))
        if args.format in ("blif", "both"):
            path = base + ".blif"
            with open(path, "w") as handle:
                handle.write(assignment_to_blif(result))
            print(f"wrote {path}")
        if args.format in ("verilog", "both"):
            path = base + ".v"
            with open(path, "w") as handle:
                handle.write(assignment_to_verilog(result))
            print(f"wrote {path}")
        print(result.summary())
    elif args.command == "sweep":
        from .sweep import run_seed_sweep

        report = run_seed_sweep(
            args.fsm, seeds=tuple(args.seeds), verbose=True,
            timeout=args.timeout, checkpoint=args.resume,
            jobs=args.jobs, retry_failed=args.retry_failed,
            shard=args.shard, stream=args.stream,
        )
        print(report.render())
        _maybe_json(report, args.json)
        return 1 if report.n_failed else 0
    elif args.command == "fuzz":
        from ..fuzz import FuzzConfig, load_corpus, replay_entry, run_fuzz

        if args.replay:
            directory = args.corpus or "tests/corpus"
            entries = load_corpus(directory)
            if not entries:
                print(f"corpus {directory}: no entries")
                return 0
            n_red = 0
            for entry in entries:
                ok, detail = replay_entry(entry)
                n_red += 0 if ok else 1
                print(f"{'ok ' if ok else 'RED'} {entry.name}: {detail}")
            print(
                f"replayed {len(entries)} corpus entries, "
                f"{n_red} failing"
            )
            return 1 if n_red else 0
        config = FuzzConfig(
            solver=args.solver,
            generators=tuple(args.generator or ()),
            max_examples=args.max_examples,
            seed=args.seed,
            scale=args.scale,
            timeout=args.timeout,
            jobs=args.jobs,
            harden=not args.no_harden,
            corpus=args.corpus,
            shard=args.shard,
            stream=args.stream,
        )
        report = run_fuzz(config)
        print(report.render())
        _maybe_json(report, args.json)
        return 1 if report.n_findings else 0
    elif args.command == "merge":
        from .merge import merge_files, report_failures

        report, experiment = merge_files(
            args.files, from_stream=args.from_stream
        )
        print(f"merged {len(args.files)} shard file(s): {experiment}")
        print(report.render())
        _maybe_json(report, args.json)
        return 1 if report_failures(report) else 0
    elif args.command == "serve":
        from ..service import ServerConfig, serve

        return serve(
            ServerConfig(
                host=args.host,
                port=args.port,
                jobs=args.jobs,
                cache_size=args.cache_size,
                queue_limit=args.queue_limit,
                batch_wait=args.batch_wait,
                batch_max=args.batch_max,
                default_timeout=args.default_timeout,
            )
        )
    elif args.command == "bench-list":
        for name, spec in sorted(BENCHMARKS.items()):
            scaled = f"  [scaled from {spec.scaled_from}]" \
                if spec.scaled_from else ""
            print(
                f"{name}: {spec.inputs}i/{spec.outputs}o/"
                f"{spec.states}s/{spec.terms}p ({spec.source}){scaled}"
            )
    return 0


def _setup_tracer(args: argparse.Namespace) -> Optional[Tracer]:
    """Install the process-wide tracer for --trace/--profile runs.

    The ``profile`` command always traces (that is its whole job).
    """
    trace = getattr(args, "trace", None)
    wants = (
        trace is not None
        or getattr(args, "profile", False)
        or args.command == "profile"
    )
    if not wants:
        return None
    sinks = [JsonlSink(trace)] if trace else []
    tracer = Tracer(*sinks)
    set_tracer(tracer)
    return tracer


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    tracer = _setup_tracer(args)
    try:
        faults.install_from_env()
        code = _dispatch(args)
        if tracer is not None and (
            getattr(args, "profile", False)
            or args.command == "profile"
        ):
            print()
            print(profile_report(tracer).render())
        return code
    except (ReproError, OSError) as exc:
        print(f"picola: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            set_tracer(None)
            tracer.close()
            if getattr(args, "trace", None):
                print(f"wrote trace {args.trace}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
