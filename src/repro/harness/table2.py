"""Table II: state assignment — two-level size and normalized time.

The paper's Table II implements the combinational component of each
IWLS-93 FSM in two levels under three state assignments — NOVA
``i_hybrid``, NOVA ``io_hybrid`` and the NEW (PICOLA-based) tool — and
reports the minimized product-term count ("size") plus run times
normalized to NOVA i_hybrid.  This module regenerates those rows and
the totals line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..encoding import derive_face_constraints
from ..fsm import TABLE2_FSMS, load_benchmark
from ..stateassign import assign_states
from .report import render_table

__all__ = ["Table2Row", "Table2Report", "run_table2", "QUICK_FSMS2"]

#: subset used by --quick runs and the test-suite
QUICK_FSMS2 = ["dk16", "donfile", "ex2", "keyb", "tma", "s386"]

#: the Table II methods, in the paper's column order
TABLE2_METHODS = ("nova_ih", "nova_ioh", "picola")


@dataclass
class Table2Row:
    fsm: str
    sizes: Dict[str, int]
    seconds: Dict[str, float]

    def time_ratio(self, method: str) -> Optional[float]:
        base = self.seconds.get("nova_ih")
        if not base:
            return None
        return self.seconds[method] / base


@dataclass
class Table2Report:
    rows: List[Table2Row] = field(default_factory=list)

    def total_size(self, method: str) -> int:
        return sum(r.sizes[method] for r in self.rows)

    def render(self) -> str:
        headers = [
            "FSM",
            "NOVA-ih size", "time",
            "NOVA-ioh size", "time",
            "NEW size", "time",
        ]
        rows = []
        for r in self.rows:
            rows.append([
                r.fsm,
                r.sizes["nova_ih"], r.time_ratio("nova_ih"),
                r.sizes["nova_ioh"], r.time_ratio("nova_ioh"),
                r.sizes["picola"], r.time_ratio("picola"),
            ])
        footer = [
            "total",
            self.total_size("nova_ih"), None,
            self.total_size("nova_ioh"), None,
            self.total_size("picola"), None,
        ]
        table = render_table(
            headers, rows,
            title="Table II - state assignment: two-level size and "
                  "time (normalized to NOVA i_hybrid)",
            footer=footer,
        )
        new = self.total_size("picola")
        ih = self.total_size("nova_ih")
        ioh = self.total_size("nova_ioh")
        summary = (
            f"\nNEW total {new} vs NOVA-ih {ih} "
            f"({100 * (ih - new) / max(new, 1):+.1f}%) and NOVA-ioh "
            f"{ioh} ({100 * (ioh - new) / max(new, 1):+.1f}%) "
            f"(paper: NEW compares favorably to both)"
        )
        return table + summary


def run_table2(
    fsms: Optional[Sequence[str]] = None,
    *,
    seed: int = 1,
    verbose: bool = False,
) -> Table2Report:
    """Regenerate Table II over the given FSM list (default: all rows)."""
    if fsms is None:
        fsms = TABLE2_FSMS
    report = Table2Report()
    for name in fsms:
        fsm = load_benchmark(name)
        # all methods see the identical input-encoding problem
        cset = derive_face_constraints(fsm)
        sizes: Dict[str, int] = {}
        seconds: Dict[str, float] = {}
        for method in TABLE2_METHODS:
            result = assign_states(
                fsm, method, seed=seed, constraints=cset
            )
            sizes[method] = result.size
            seconds[method] = result.encode_seconds
        report.rows.append(
            Table2Row(fsm=name, sizes=sizes, seconds=seconds)
        )
        if verbose:
            print(
                f"{name}: " + " ".join(
                    f"{m}={sizes[m]}" for m in TABLE2_METHODS
                ),
                flush=True,
            )
    return report
