"""Table II: state assignment — two-level size and normalized time.

The paper's Table II implements the combinational component of each
IWLS-93 FSM in two levels under three state assignments — NOVA
``i_hybrid``, NOVA ``io_hybrid`` and the NEW (PICOLA-based) tool — and
reports the minimized product-term count ("size") plus run times
normalized to NOVA i_hybrid.  This module regenerates those rows and
the totals line.

Rows run behind the :mod:`repro.runtime` fault boundary: a crashing
benchmark yields a ``FAILED (<reason>)`` row, a method that exceeds
the optional per-method ``timeout`` renders a ``TIMEOUT`` cell, and a
``checkpoint`` path makes long runs resumable.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..encoding import derive_face_constraints
from ..fsm import TABLE2_FSMS, load_benchmark
from ..runtime import Budget, BudgetExceeded, Checkpoint, SolverTimeout, faults
from ..runtime.checkpoint import resumable
from ..stateassign import assign_states
from .parallel import Unit, run_units
from .report import render_table
from .shard import ShardSpec, StreamWriter, build_meta, resolve_shard

__all__ = ["Table2Row", "Table2Report", "run_table2", "QUICK_FSMS2"]

#: subset used by --quick runs and the test-suite
QUICK_FSMS2 = ["dk16", "donfile", "ex2", "keyb", "tma", "s386"]

#: the Table II methods, in the paper's column order
TABLE2_METHODS = ("nova_ih", "nova_ioh", "picola")


@dataclass
class Table2Row:
    fsm: str
    sizes: Dict[str, Optional[int]] = field(default_factory=dict)
    seconds: Dict[str, Optional[float]] = field(default_factory=dict)
    #: per-method encoder work (beam states / moves / minimizations)
    nodes: Dict[str, Optional[int]] = field(default_factory=dict)
    #: "ok" | "timeout" | "budget" | "failed" — row-level outcome
    status: str = "ok"
    error: Optional[str] = None
    #: per-method cell outcome for non-numeric cells
    method_status: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def failure_reason(self) -> str:
        if self.status in ("timeout", "budget"):
            return self.status
        return (self.error or "error").split(":", 1)[0]

    def time_ratio(self, method: str) -> Optional[float]:
        base = self.seconds.get("nova_ih")
        seconds = self.seconds.get(method)
        if not base or seconds is None:
            return None
        return seconds / base

    # -- checkpoint / JSON payload -------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "fsm": self.fsm,
            "sizes": dict(self.sizes),
            "seconds": dict(self.seconds),
            "nodes": dict(self.nodes),
            "status": self.status,
            "error": self.error,
            "method_status": dict(self.method_status),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Table2Row":
        return cls(
            fsm=data["fsm"],
            sizes=dict(data.get("sizes", {})),
            seconds=dict(data.get("seconds", {})),
            nodes=dict(data.get("nodes", {})),
            status=data.get("status", "ok"),
            error=data.get("error"),
            method_status=dict(data.get("method_status", {})),
        )


@dataclass
class Table2Report:
    rows: List[Table2Row] = field(default_factory=list)

    def total_size(self, method: str) -> int:
        return sum(
            r.sizes[method] for r in self.rows
            if r.ok and r.sizes.get(method) is not None
        )

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.rows if not r.ok)

    def render(self, profile: bool = False) -> str:
        """Text table; ``profile=True`` adds raw seconds and encoder
        work (nodes) per method."""
        headers = [
            "FSM",
            "NOVA-ih size", "time",
            "NOVA-ioh size", "time",
            "NEW size", "time",
        ]
        if profile:
            for method in TABLE2_METHODS:
                headers += [f"t:{method}", f"n:{method}"]
        rows = []
        for r in self.rows:
            if not r.ok:
                cells: List[object] = [
                    r.fsm, f"FAILED ({r.failure_reason})",
                    None, None, None, None, None,
                ]
                if profile:
                    cells += [None] * (2 * len(TABLE2_METHODS))
                rows.append(cells)
                continue
            cells = [r.fsm]
            for method in TABLE2_METHODS:
                size = r.sizes.get(method)
                if size is None:
                    cell_status = r.method_status.get(method)
                    cells.append(
                        cell_status.upper() if cell_status else None
                    )
                else:
                    cells.append(size)
                cells.append(r.time_ratio(method))
            if profile:
                for method in TABLE2_METHODS:
                    cells.append(r.seconds.get(method))
                    cells.append(r.nodes.get(method))
            rows.append(cells)
        footer = [
            "total",
            self.total_size("nova_ih"), None,
            self.total_size("nova_ioh"), None,
            self.total_size("picola"), None,
        ]
        if profile:
            for method in TABLE2_METHODS:
                footer.append(sum(
                    r.seconds[method] for r in self.rows
                    if r.ok and r.seconds.get(method) is not None
                ))
                footer.append(sum(
                    r.nodes[method] for r in self.rows
                    if r.ok and r.nodes.get(method) is not None
                ))
        table = render_table(
            headers, rows,
            title="Table II - state assignment: two-level size and "
                  "time (normalized to NOVA i_hybrid)",
            footer=footer,
        )
        new = self.total_size("picola")
        ih = self.total_size("nova_ih")
        ioh = self.total_size("nova_ioh")
        summary = (
            f"\nNEW total {new} vs NOVA-ih {ih} "
            f"({100 * (ih - new) / max(new, 1):+.1f}%) and NOVA-ioh "
            f"{ioh} ({100 * (ioh - new) / max(new, 1):+.1f}%) "
            f"(paper: NEW compares favorably to both)"
        )
        if self.n_failed:
            failed = ", ".join(
                f"{r.fsm} ({r.failure_reason})"
                for r in self.rows if not r.ok
            )
            summary += f"\n{self.n_failed} benchmark(s) failed: {failed}"
        return table + summary


def _table2_row(
    name: str, *, seed: int, timeout: Optional[float]
) -> Table2Row:
    """Compute one Table II row (runs inside the fault boundary)."""
    faults.trip("table2.row", key=name)
    fsm = load_benchmark(name)
    # all methods see the identical input-encoding problem
    cset = derive_face_constraints(fsm)
    row = Table2Row(fsm=name)
    for method in TABLE2_METHODS:
        try:
            result = assign_states(
                fsm, method, seed=seed, constraints=cset,
                budget=Budget(seconds=timeout),
            )
        except SolverTimeout:
            row.sizes[method] = None
            row.seconds[method] = None
            row.nodes[method] = None
            row.method_status[method] = "timeout"
        except BudgetExceeded:
            row.sizes[method] = None
            row.seconds[method] = None
            row.nodes[method] = None
            row.method_status[method] = "budget"
        else:
            row.sizes[method] = result.size
            row.seconds[method] = result.encode_seconds
            row.nodes[method] = result.extra.get("encode_nodes")
    return row


def run_table2(
    fsms: Optional[Sequence[str]] = None,
    *,
    seed: int = 1,
    verbose: bool = False,
    timeout: Optional[float] = None,
    checkpoint: Optional[Union[str, pathlib.Path, Checkpoint]] = None,
    jobs: int = 1,
    retry_failed: bool = False,
    shard: Optional[Union[str, ShardSpec]] = None,
    stream: Optional[Union[str, pathlib.Path]] = None,
) -> Table2Report:
    """Regenerate Table II over the given FSM list (default: all rows).

    ``timeout`` bounds each method's wall clock (a blown deadline
    renders a ``TIMEOUT`` cell); ``checkpoint`` makes the run
    resumable after a kill, failed rows included (``retry_failed``
    re-runs them).  ``jobs`` parallelizes rows over worker processes
    with deterministic submission-order merging.  ``shard`` (``K/N``)
    runs only this host's slice of the row list, stamping the
    checkpoint with a shard meta block for ``picola merge``;
    ``stream`` appends one JSON line per completed row.
    """
    if fsms is None:
        fsms = TABLE2_FSMS
    spec = resolve_shard(shard)
    all_names = list(fsms)
    meta: Optional[Dict[str, Any]] = None
    if spec is not None or stream is not None:
        meta = build_meta(
            "table2", all_names,
            {"seed": seed, "timeout": timeout},
            spec,
        )
    names = spec.partition(all_names) if spec is not None else all_names
    ckpt: Optional[Checkpoint] = None
    if checkpoint is not None:
        ckpt = (
            checkpoint if isinstance(checkpoint, Checkpoint)
            else Checkpoint(
                checkpoint, experiment="table2",
                meta=meta if spec is not None else None,
            )
        )
    writer = (
        StreamWriter(stream, meta) if stream is not None else None
    )
    report = Table2Report()
    resumed: Dict[str, Any] = {}
    units: List[Unit] = []
    for name in names:
        payload = resumable(ckpt, name, retry_failed)
        if payload is not None:
            resumed[name] = payload
        else:
            units.append(Unit(
                key=name, fn=_table2_row, args=(name,),
                kwargs=dict(seed=seed, timeout=timeout),
            ))
    outcomes = run_units(units, jobs=jobs)
    try:
        for name in names:
            if name in resumed:
                row = Table2Row.from_dict(resumed[name])
                report.rows.append(row)
                if writer is not None:
                    writer.emit_cell(name, row.to_dict(), resumed=True)
                if verbose:
                    print(
                        f"{name}: resumed from checkpoint", flush=True
                    )
                continue
            outcome = next(outcomes)
            if outcome.ok:
                row = outcome.value
            else:
                row = Table2Row(
                    fsm=name, status=outcome.status, error=outcome.error
                )
            report.rows.append(row)
            if ckpt is not None:
                ckpt.mark_done(name, row.to_dict())
            if writer is not None:
                writer.emit_cell(name, row.to_dict())
            if verbose:
                if row.ok:
                    print(
                        f"{name}: " + " ".join(
                            f"{m}={row.sizes.get(m)}"
                            for m in TABLE2_METHODS
                        ),
                        flush=True,
                    )
                else:
                    print(
                        f"{name}: FAILED ({row.failure_reason})",
                        flush=True,
                    )
    finally:
        if writer is not None:
            writer.close()
    return report
