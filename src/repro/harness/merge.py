"""``picola merge`` — combine shard results into one report.

Independent hosts each run ``picola <experiment> --shard K/N`` with a
``--resume`` checkpoint (or ``--stream`` results file); this module
recombines the N files into the exact report an unsharded run would
have produced:

* every file is **self-describing** (schema version, experiment tag,
  shard spec, the full ordered unit universe, experiment params);
  merging refuses mismatched tags, disagreeing unit universes or
  params, duplicate or missing shards, cells outside a shard's
  partition, and incomplete shards — each with a one-line diagnostic;
* the combined cells replay through the drivers' own resume loops
  (via an in-memory :class:`~repro.runtime.Checkpoint`), so failed
  cells keep their ``payload_failed`` semantics and the rendered
  table is **byte-identical** to the unsharded run;
* stream files (``--from-stream``, or auto-detected) carry the same
  meta in their header line and merge the same way — a report can be
  rebuilt purely from the JSONL progress feed.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple, Union

from ..runtime import Checkpoint, CheckpointError
from .shard import SCHEMA_VERSION, ShardSpec, read_stream

__all__ = ["merge_files", "report_failures"]


@dataclass
class _ShardFile:
    """One loaded shard result file, whatever its container format."""

    path: pathlib.Path
    meta: Dict[str, Any]
    completed: Dict[str, Any]

    @property
    def experiment(self) -> str:
        return self.meta["experiment"]

    @property
    def spec(self) -> ShardSpec:
        shard = self.meta.get("shard")
        if shard is None:  # an unsharded --stream run merges as 1/1
            return ShardSpec(index=1, total=1)
        return ShardSpec.from_dict(shard)


def _load_file(
    path: Union[str, pathlib.Path], from_stream: bool
) -> _ShardFile:
    path = pathlib.Path(path)
    if not from_stream:
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise CheckpointError(
                f"unreadable shard file {path}: {exc}"
            ) from exc
        except json.JSONDecodeError:
            data = None  # multi-line: try the stream parser below
        if isinstance(data, dict) and "format" in data:
            # a checkpoint file: let Checkpoint validate format + tag
            ckpt = Checkpoint(path)
            if ckpt.meta is None:
                raise CheckpointError(
                    f"{path} is a plain checkpoint, not a shard "
                    "checkpoint (re-run with --shard K/N to stamp "
                    "the shard meta block)"
                )
            meta = dict(ckpt.meta)
            meta.setdefault("experiment", ckpt.experiment)
            if meta["experiment"] != ckpt.experiment:
                raise CheckpointError(
                    f"{path}: meta experiment {meta['experiment']!r} "
                    f"contradicts checkpoint tag {ckpt.experiment!r}"
                )
            return _ShardFile(
                path=path, meta=meta, completed=ckpt.completed
            )
    meta, completed = read_stream(path)
    if "experiment" not in meta:
        raise CheckpointError(
            f"{path}: stream header carries no experiment tag"
        )
    return _ShardFile(path=path, meta=meta, completed=completed)


def _validate(files: List[_ShardFile]) -> None:
    first = files[0]
    for f in files:
        schema = f.meta.get("schema")
        if schema != SCHEMA_VERSION:
            raise CheckpointError(
                f"{f.path}: shard schema {schema!r} is not the "
                f"supported version {SCHEMA_VERSION}"
            )
        if f.experiment != first.experiment:
            raise CheckpointError(
                f"cannot merge experiments {first.experiment!r} "
                f"({first.path}) and {f.experiment!r} ({f.path})"
            )
        if f.meta.get("units") != first.meta.get("units"):
            raise CheckpointError(
                f"{f.path} and {first.path} disagree on the unit "
                "universe; the shards come from different runs"
            )
        if f.meta.get("params") != first.meta.get("params"):
            raise CheckpointError(
                f"{f.path} and {first.path} disagree on experiment "
                "params (seeds/timeouts/options); refusing to mix"
            )
    total = first.spec.total
    seen: Dict[int, pathlib.Path] = {}
    for f in files:
        spec = f.spec
        if spec.total != total:
            raise CheckpointError(
                f"{f.path} is shard {spec} but {first.path} is "
                f"{first.spec}; shard totals must agree"
            )
        if spec.index in seen:
            raise CheckpointError(
                f"duplicate shard {spec}: {seen[spec.index]} and "
                f"{f.path}"
            )
        seen[spec.index] = f.path
    missing_shards = sorted(set(range(1, total + 1)) - set(seen))
    if missing_shards:
        raise CheckpointError(
            "missing shard file(s) "
            + ", ".join(f"{i}/{total}" for i in missing_shards)
            + " — merge needs all shards of the run"
        )
    units = first.meta.get("units") or []
    for f in files:
        expected = set(f.spec.partition(units))
        have = set(f.completed)
        foreign = sorted(have - expected)
        if foreign:
            raise CheckpointError(
                f"{f.path}: cells {foreign[:5]} are outside shard "
                f"{f.spec}'s partition — overlapping or corrupted "
                "shard files"
            )
        incomplete = sorted(
            k for k in expected if k not in have
        )
        if incomplete:
            raise CheckpointError(
                f"{f.path}: shard {f.spec} is missing "
                f"{len(incomplete)} cell(s) (e.g. {incomplete[:5]}) "
                "— resume that shard to completion first"
            )


def _rebuild(
    experiment: str,
    meta: Dict[str, Any],
    completed: Dict[str, Any],
) -> Any:
    """Replay the combined cells through the driver resume loops."""
    units: List[str] = list(meta.get("units") or [])
    params: Dict[str, Any] = dict(meta.get("params") or {})
    ckpt = Checkpoint.in_memory(experiment, completed)
    if experiment == "table1":
        from .table1 import run_table1

        return run_table1(units, checkpoint=ckpt)
    if experiment == "table2":
        from .table2 import run_table2

        return run_table2(units, checkpoint=ckpt)
    if experiment == "ablation":
        from .ablation import run_ablation

        return run_ablation(
            units, variants=params.get("variants"), checkpoint=ckpt
        )
    if experiment == "sweep":
        from .sweep import run_seed_sweep

        return run_seed_sweep(
            params["fsms"], seeds=tuple(params["seeds"]),
            nova_seed=params.get("nova_seed", 1),
            checkpoint=ckpt,
        )
    if experiment == "fuzz":
        from ..fuzz.oracle import CaseOutcome
        from ..fuzz.runner import FuzzConfig, FuzzReport

        config = FuzzConfig(
            solver=params["solver"],
            generators=tuple(params.get("generators") or ()),
            max_examples=params["max_examples"],
            seed=params["seed"],
            scale=params["scale"],
            timeout=params.get("timeout"),
            harden=params.get("harden", True),
            cosim_steps=params.get("cosim_steps", 128),
        )
        report = FuzzReport(config=config)
        for key in units:
            report.outcomes.append(
                CaseOutcome.from_dict(completed[key])
            )
        return report
    raise CheckpointError(
        f"cannot rebuild a report for experiment {experiment!r}"
    )


def merge_files(
    paths: Sequence[Union[str, pathlib.Path]],
    *,
    from_stream: bool = False,
) -> Tuple[Any, str]:
    """Merge shard checkpoint/stream files into ``(report, tag)``.

    ``from_stream`` forces JSONL stream parsing; by default each
    file's container format is auto-detected (a checkpoint is one
    JSON object with a ``format`` field, a stream starts with a
    ``header`` line).
    """
    if not paths:
        raise CheckpointError("merge needs at least one shard file")
    files = [_load_file(p, from_stream) for p in paths]
    _validate(files)
    combined: Dict[str, Any] = {}
    for f in sorted(files, key=lambda f: f.spec.index):
        combined.update(f.completed)
    experiment = files[0].experiment
    report = _rebuild(experiment, files[0].meta, combined)
    return report, experiment


def report_failures(report: Any) -> int:
    """Failure count for the CLI exit code, across report shapes."""
    n = getattr(report, "n_failed", None)
    if n is None:
        n = getattr(report, "n_findings", 0)
    return int(n)
