"""Ablations of PICOLA's design choices (DESIGN.md experiments A-C).

* A — guide constraints on/off (Section 3.2's claim: guides buy
  economical implementations of infeasible constraints);
* B — objective: the full PICOLA weight policy vs pure
  dichotomy-counting vs constraint-counting (Section 2's rationale);
* C — dynamic vs static classification (Section 5: "the detection is
  dynamically done during the encoding process");
* D — the final repair pass on/off (an implementation liberty of this
  reproduction; see repro.core.repair).

``include_exact=True`` adds the branch-and-bound optimality reference
(:func:`repro.encoding.exact_encode`) as an extra column, run under a
node/wall-clock budget; a cell whose budget blows up degrades to
``BUDGET``/``TIMEOUT`` instead of killing the run.  Whole-FSM
failures are likewise isolated into ``FAILED`` rows, and a
``checkpoint`` path makes long ablations resumable.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..core import PicolaOptions
from ..encoding import derive_face_constraints, evaluate_encoding
from ..fsm import load_benchmark
from ..runtime import Budget, BudgetExceeded, Checkpoint, SolverTimeout, faults
from ..runtime.checkpoint import payload_failed, resumable
from ..solvers import get_solver
from .parallel import Unit, run_units
from .report import render_table
from .shard import ShardSpec, StreamWriter, build_meta, resolve_shard
from .table1 import QUICK_FSMS

__all__ = ["ABLATION_VARIANTS", "AblationReport", "run_ablation"]

ABLATION_VARIANTS: Dict[str, PicolaOptions] = {
    "full": PicolaOptions(),
    "no_guides": PicolaOptions(use_guides=False),
    "static_classify": PicolaOptions(dynamic_classify=False),
    "dichotomy_objective": PicolaOptions(weights="dichotomy_count"),
    "constraint_objective": PicolaOptions(weights="constraint_count"),
    "no_repair": PicolaOptions(final_repair=False),
    "greedy_beam": PicolaOptions(beam_width=1, beam_candidates=1),
}

#: the optimality-reference pseudo-variant (not a PicolaOptions)
EXACT_VARIANT = "exact"


@dataclass
class AblationReport:
    variants: List[str]
    cubes: Dict[str, Dict[str, Optional[int]]] = field(
        default_factory=dict
    )
    satisfied: Dict[str, Dict[str, Optional[int]]] = field(
        default_factory=dict
    )
    #: per-cell wall clock of the encode step, fsm -> variant -> s
    seconds: Dict[str, Dict[str, Optional[float]]] = field(
        default_factory=dict
    )
    #: per-cell solver work, fsm -> variant -> nodes
    nodes: Dict[str, Dict[str, Optional[int]]] = field(
        default_factory=dict
    )
    #: per-cell degradation reasons, fsm -> variant -> reason
    cell_status: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: whole-FSM failures, fsm -> reason
    failures: Dict[str, str] = field(default_factory=dict)

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    def total(self, variant: str) -> int:
        return sum(
            self.cubes[f][variant]
            for f in self.cubes
            if self.cubes[f].get(variant) is not None
        )

    def render(self, profile: bool = False) -> str:
        """Text table; ``profile=True`` appends per-variant seconds
        and solver-work (nodes) tables."""
        headers = ["FSM"] + list(self.variants)
        rows = []
        for fsm in self.cubes:
            cells: List[object] = [fsm]
            for v in self.variants:
                cube = self.cubes[fsm].get(v)
                if cube is None:
                    reason = self.cell_status.get(fsm, {}).get(v)
                    cells.append(reason.upper() if reason else None)
                else:
                    cells.append(cube)
            rows.append(cells)
        for fsm, reason in self.failures.items():
            rows.append(
                [fsm, f"FAILED ({reason})"]
                + [None] * (len(self.variants) - 1)
            )
        footer = ["total"] + [self.total(v) for v in self.variants]
        table = render_table(
            headers, rows,
            title="Ablation - total constraint-implementation cubes "
                  "per PICOLA variant",
            footer=footer,
        )
        if profile:
            for title, grid in (
                ("Ablation - encode seconds per variant",
                 self.seconds),
                ("Ablation - solver work (nodes) per variant",
                 self.nodes),
            ):
                prof_rows = [
                    [fsm] + [grid.get(fsm, {}).get(v)
                             for v in self.variants]
                    for fsm in self.cubes
                ]
                table += "\n\n" + render_table(
                    headers, prof_rows, title=title
                )
        if self.failures:
            failed = ", ".join(
                f"{fsm} ({reason})"
                for fsm, reason in self.failures.items()
            )
            table += f"\n{self.n_failed} benchmark(s) failed: {failed}"
        return table


def _ablation_cells(
    name: str,
    variants: Sequence[str],
    *,
    timeout: Optional[float],
    exact_nodes: int,
) -> Dict[str, Dict[str, Any]]:
    """All variant cells for one FSM (runs inside the fault boundary)."""
    faults.trip("ablation.fsm", key=name)
    fsm = load_benchmark(name)
    cset = derive_face_constraints(fsm)
    cells: Dict[str, Dict[str, Any]] = {
        "cubes": {}, "satisfied": {}, "status": {},
        "seconds": {}, "nodes": {},
    }
    for variant in variants:
        if variant == EXACT_VARIANT:
            solver = get_solver("exact")
            options: Dict[str, Any] = {"strict": True}
            budget = Budget(max_nodes=exact_nodes, seconds=timeout)
        else:
            solver = get_solver("picola")
            options = {
                "picola_options": ABLATION_VARIANTS[variant],
            }
            budget = Budget(seconds=timeout)
        try:
            result = solver.solve(cset, options=options, budget=budget)
        except SolverTimeout:
            cells["cubes"][variant] = None
            cells["satisfied"][variant] = None
            cells["seconds"][variant] = None
            cells["nodes"][variant] = None
            cells["status"][variant] = "timeout"
            continue
        except BudgetExceeded:
            cells["cubes"][variant] = None
            cells["satisfied"][variant] = None
            cells["seconds"][variant] = None
            cells["nodes"][variant] = None
            cells["status"][variant] = "budget"
            continue
        evaluation = evaluate_encoding(result.encoding, cset)
        cells["cubes"][variant] = evaluation.total_cubes
        cells["satisfied"][variant] = evaluation.n_satisfied
        cells["seconds"][variant] = result.seconds
        cells["nodes"][variant] = result.nodes
    return cells


def run_ablation(
    fsms: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[str]] = None,
    *,
    verbose: bool = False,
    include_exact: bool = False,
    exact_nodes: int = 250_000,
    timeout: Optional[float] = None,
    checkpoint: Optional[Union[str, pathlib.Path, Checkpoint]] = None,
    jobs: int = 1,
    retry_failed: bool = False,
    shard: Optional[Union[str, ShardSpec]] = None,
    stream: Optional[Union[str, pathlib.Path]] = None,
) -> AblationReport:
    if fsms is None:
        fsms = QUICK_FSMS
    if variants is None:
        variants = list(ABLATION_VARIANTS)
    variants = list(variants)
    if include_exact and EXACT_VARIANT not in variants:
        variants.append(EXACT_VARIANT)
    spec = resolve_shard(shard)
    all_names = list(fsms)
    meta: Optional[Dict[str, Any]] = None
    if spec is not None or stream is not None:
        meta = build_meta(
            "ablation", all_names,
            {
                "variants": variants, "timeout": timeout,
                "exact_nodes": exact_nodes,
            },
            spec,
        )
    names = spec.partition(all_names) if spec is not None else all_names
    ckpt: Optional[Checkpoint] = None
    if checkpoint is not None:
        ckpt = (
            checkpoint if isinstance(checkpoint, Checkpoint)
            else Checkpoint(
                checkpoint, experiment="ablation",
                meta=meta if spec is not None else None,
            )
        )
    writer = (
        StreamWriter(stream, meta) if stream is not None else None
    )
    report = AblationReport(variants=variants)
    resumed: Dict[str, Dict[str, Any]] = {}
    units: List[Unit] = []
    for name in names:
        payload = resumable(ckpt, name, retry_failed)
        if payload is not None:
            resumed[name] = payload
        else:
            units.append(Unit(
                key=name, fn=_ablation_cells, args=(name, variants),
                kwargs=dict(timeout=timeout, exact_nodes=exact_nodes),
            ))
    outcomes = run_units(units, jobs=jobs)
    try:
        for name in names:
            if name in resumed:
                payload = resumed[name]
                if writer is not None:
                    writer.emit_cell(name, payload, resumed=True)
                if payload_failed(payload):
                    reason = payload.get("reason") or payload["status"]
                    report.failures[name] = reason
                    if verbose:
                        print(
                            f"{name}: FAILED ({reason}, resumed from "
                            "checkpoint)",
                            flush=True,
                        )
                    continue
                report.cubes[name] = dict(payload.get("cubes", {}))
                report.satisfied[name] = dict(
                    payload.get("satisfied", {})
                )
                report.seconds[name] = dict(payload.get("seconds", {}))
                report.nodes[name] = dict(payload.get("nodes", {}))
                status = dict(payload.get("status", {}))
                if status:
                    report.cell_status[name] = status
                if verbose:
                    print(
                        f"{name}: resumed from checkpoint", flush=True
                    )
                continue
            outcome = next(outcomes)
            if not outcome.ok:
                failure = {
                    "status": outcome.status,
                    "reason": outcome.reason,
                    "error": outcome.error,
                }
                report.failures[name] = outcome.reason
                if ckpt is not None:
                    ckpt.mark_done(name, failure)
                if writer is not None:
                    writer.emit_cell(name, failure)
                if verbose:
                    print(
                        f"{name}: FAILED ({outcome.reason})", flush=True
                    )
                continue
            cells = outcome.value
            report.cubes[name] = cells["cubes"]
            report.satisfied[name] = cells["satisfied"]
            report.seconds[name] = cells["seconds"]
            report.nodes[name] = cells["nodes"]
            if cells["status"]:
                report.cell_status[name] = cells["status"]
            if ckpt is not None:
                ckpt.mark_done(name, cells)
            if writer is not None:
                writer.emit_cell(name, cells)
            if verbose:
                print(f"{name}: {report.cubes[name]}", flush=True)
    finally:
        if writer is not None:
            writer.close()
    return report
