"""Ablations of PICOLA's design choices (DESIGN.md experiments A-C).

* A — guide constraints on/off (Section 3.2's claim: guides buy
  economical implementations of infeasible constraints);
* B — objective: the full PICOLA weight policy vs pure
  dichotomy-counting vs constraint-counting (Section 2's rationale);
* C — dynamic vs static classification (Section 5: "the detection is
  dynamically done during the encoding process");
* D — the final repair pass on/off (an implementation liberty of this
  reproduction; see repro.core.repair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core import PicolaOptions, picola_encode
from ..encoding import derive_face_constraints, evaluate_encoding
from ..fsm import load_benchmark
from .report import render_table
from .table1 import QUICK_FSMS

__all__ = ["ABLATION_VARIANTS", "AblationReport", "run_ablation"]

ABLATION_VARIANTS: Dict[str, PicolaOptions] = {
    "full": PicolaOptions(),
    "no_guides": PicolaOptions(use_guides=False),
    "static_classify": PicolaOptions(dynamic_classify=False),
    "dichotomy_objective": PicolaOptions(weights="dichotomy_count"),
    "constraint_objective": PicolaOptions(weights="constraint_count"),
    "no_repair": PicolaOptions(final_repair=False),
    "greedy_beam": PicolaOptions(beam_width=1, beam_candidates=1),
}


@dataclass
class AblationReport:
    variants: List[str]
    cubes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    satisfied: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def total(self, variant: str) -> int:
        return sum(self.cubes[f][variant] for f in self.cubes)

    def render(self) -> str:
        headers = ["FSM"] + list(self.variants)
        rows = []
        for fsm in self.cubes:
            rows.append(
                [fsm] + [self.cubes[fsm][v] for v in self.variants]
            )
        footer = ["total"] + [self.total(v) for v in self.variants]
        return render_table(
            headers, rows,
            title="Ablation - total constraint-implementation cubes "
                  "per PICOLA variant",
            footer=footer,
        )


def run_ablation(
    fsms: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[str]] = None,
    *,
    verbose: bool = False,
) -> AblationReport:
    if fsms is None:
        fsms = QUICK_FSMS
    if variants is None:
        variants = list(ABLATION_VARIANTS)
    report = AblationReport(variants=list(variants))
    for name in fsms:
        fsm = load_benchmark(name)
        cset = derive_face_constraints(fsm)
        report.cubes[name] = {}
        report.satisfied[name] = {}
        for variant in variants:
            result = picola_encode(
                cset, options=ABLATION_VARIANTS[variant]
            )
            evaluation = evaluate_encoding(result.encoding, cset)
            report.cubes[name][variant] = evaluation.total_cubes
            report.satisfied[name][variant] = evaluation.n_satisfied
        if verbose:
            print(f"{name}: {report.cubes[name]}", flush=True)
    return report
