"""Deterministic sharding + streaming results for multi-host sweeps.

The experiment drivers are embarrassingly parallel over their unit
lists (Table I/II rows, sweep ``seed/fsm`` cells, ablation FSMs, fuzz
cases); this module splits that list across *machines* the way
:mod:`repro.harness.parallel` splits it across *processes*:

* :class:`ShardSpec` — the ``--shard K/N`` partition: shard ``K`` of
  ``N`` owns every unit whose position in the full, deterministic
  unit list satisfies ``i % N == K - 1``.  Round-robin by position,
  so heterogeneous unit costs spread evenly and the N shards cover
  every unit exactly once with no coordination.
* :func:`build_meta` — the self-describing run descriptor stamped
  into shard checkpoints and stream headers: schema version,
  experiment tag, shard spec, the full ordered unit universe and the
  experiment parameters.  ``picola merge`` validates these against
  each other before combining results.
* :class:`StreamWriter` / :func:`read_stream` — the ``--stream
  results.jsonl`` sink: one header line describing the run, then one
  JSON line per completed cell *as it finishes* (reusing the
  :class:`~repro.obs.JsonlSink` machinery), then an ``end`` marker.
  CI or a dashboard can ``tail -f`` progress; ``picola merge
  --from-stream`` rebuilds the same report from the lines.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs import JsonlSink
from ..runtime import CheckpointError, InvalidSpecError

__all__ = [
    "SCHEMA_VERSION",
    "ShardSpec",
    "parse_shard",
    "resolve_shard",
    "build_meta",
    "StreamWriter",
    "read_stream",
]

#: bump when the shard checkpoint / stream cell payload shape changes
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ShardSpec:
    """``--shard index/total`` — 1-based shard ``index`` of ``total``."""

    index: int
    total: int

    def __post_init__(self) -> None:
        if self.total < 1:
            raise InvalidSpecError(
                f"shard total must be >= 1, got {self.total}"
            )
        if not 1 <= self.index <= self.total:
            raise InvalidSpecError(
                f"shard index must be in 1..{self.total}, "
                f"got {self.index}"
            )

    def __str__(self) -> str:
        return f"{self.index}/{self.total}"

    def owns(self, position: int) -> bool:
        """Does this shard own the unit at ``position`` (0-based) in
        the full unit list?"""
        return position % self.total == self.index - 1

    def partition(self, keys: Sequence[str]) -> List[str]:
        """The subsequence of ``keys`` this shard owns.  Over all N
        shards the partitions are disjoint and cover every key."""
        return [k for i, k in enumerate(keys) if self.owns(i)]

    def to_dict(self) -> Dict[str, int]:
        return {"index": self.index, "total": self.total}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardSpec":
        return cls(index=int(data["index"]), total=int(data["total"]))


def parse_shard(text: str) -> ShardSpec:
    """Parse a ``K/N`` command-line value into a :class:`ShardSpec`."""
    parts = text.split("/")
    if len(parts) != 2:
        raise InvalidSpecError(
            f"shard spec must look like K/N, got {text!r}"
        )
    try:
        index, total = int(parts[0]), int(parts[1])
    except ValueError:
        raise InvalidSpecError(
            f"shard spec must be two integers K/N, got {text!r}"
        ) from None
    return ShardSpec(index=index, total=total)


def resolve_shard(
    shard: Optional[Union[str, ShardSpec]]
) -> Optional[ShardSpec]:
    """Accept ``None``, a ``"K/N"`` string, or a ready spec."""
    if shard is None or isinstance(shard, ShardSpec):
        return shard
    return parse_shard(shard)


def build_meta(
    experiment: str,
    units: Sequence[str],
    params: Dict[str, Any],
    shard: Optional[ShardSpec],
) -> Dict[str, Any]:
    """The self-describing run descriptor for checkpoints/streams.

    ``units`` is the *full* ordered unit universe of the unsharded
    run — every shard of one campaign records the identical list, so
    the merge can both validate compatibility and detect missing or
    overlapping cells.  ``params`` round-trips through JSON so tuples
    and lists compare equal across processes.
    """
    return {
        "schema": SCHEMA_VERSION,
        "experiment": experiment,
        "shard": shard.to_dict() if shard is not None else None,
        "units": list(units),
        "params": json.loads(json.dumps(params)),
    }


class StreamWriter:
    """Append one JSON line per completed cell to a results file.

    Line shapes::

        {"type": "header", "schema": 1, "experiment": ..., "shard":
         {"index": K, "total": N} | null, "units": [...], "params": {...}}
        {"type": "cell", "key": "<unit key>", "resumed": bool,
         "payload": {...}}
        {"type": "end", "cells": <count>}

    The ``header`` carries the same meta a shard checkpoint does, so
    stream files are self-describing and mergeable on their own.
    """

    def __init__(
        self, path: Union[str, pathlib.Path], meta: Dict[str, Any]
    ) -> None:
        self.path = pathlib.Path(path)
        self._sink = JsonlSink(self.path)
        self._cells = 0
        self._closed = False
        self._sink.emit(dict({"type": "header"}, **meta))
        self._flush()

    def _flush(self) -> None:
        # a dashboard tailing the file must see each cell as it
        # finishes, not when the run ends
        self._sink.flush()

    def emit_cell(
        self, key: str, payload: Any, *, resumed: bool = False
    ) -> None:
        self._sink.emit(
            {
                "type": "cell",
                "key": key,
                "resumed": resumed,
                "payload": payload,
            }
        )
        self._cells += 1
        self._flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._sink.emit({"type": "end", "cells": self._cells})
        self._sink.close()


def read_stream(
    path: Union[str, pathlib.Path]
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Parse one stream file back into ``(meta, completed)``.

    The first line must be the header; later lines are cells (last
    write wins, matching a resumed run re-emitting its cells).  A
    truncated *final* line — the run was killed mid-append — is
    dropped silently; a malformed line anywhere else is an error.
    An ``end`` marker is optional but, when present, must agree with
    the number of cells read.
    """
    path = pathlib.Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise CheckpointError(
            f"unreadable stream file {path}: {exc}"
        ) from exc
    meta: Optional[Dict[str, Any]] = None
    completed: Dict[str, Any] = {}
    declared_cells: Optional[int] = None
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn final write of a killed run
            raise CheckpointError(
                f"{path}:{lineno}: malformed stream line: {exc}"
            ) from exc
        kind = event.get("type") if isinstance(event, dict) else None
        if meta is None:
            if kind != "header":
                raise CheckpointError(
                    f"{path}: not a results stream (first line is "
                    f"{kind!r}, expected a 'header')"
                )
            meta = {k: v for k, v in event.items() if k != "type"}
        elif kind == "cell":
            completed[event["key"]] = event["payload"]
        elif kind == "end":
            declared_cells = event.get("cells")
        elif kind == "header":
            raise CheckpointError(
                f"{path}:{lineno}: duplicate stream header"
            )
        else:
            raise CheckpointError(
                f"{path}:{lineno}: unknown stream line type {kind!r}"
            )
    if meta is None:
        raise CheckpointError(f"{path}: empty stream file")
    if declared_cells is not None and declared_cells != len(completed):
        # duplicate keys (resumed re-emits) make the marker count an
        # upper bound; fewer *distinct* cells than declared is fine,
        # more means the file was corrupted
        if len(completed) > declared_cells:
            raise CheckpointError(
                f"{path}: stream records {len(completed)} cells but "
                f"the end marker declares {declared_cells}"
            )
    return meta, completed
