"""Seed-stability sweep: are the conclusions generator-independent?

The benchmark machines are seeded synthetic stand-ins (DESIGN.md §2),
so a fair question is whether Table I's conclusions depend on the
particular draw.  ``run_seed_sweep`` regenerates the quick Table I
comparison under several FSM-generator seeds and reports, per seed,
the PICOLA/NOVA totals and win-loss record, plus aggregate mean and
spread — the reproduction's robustness check.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import nova_encode
from ..core import picola_encode
from ..encoding import derive_face_constraints, evaluate_encoding
from ..fsm import BENCHMARKS, load_benchmark
from .report import render_table
from .table1 import QUICK_FSMS

__all__ = ["SeedSweepReport", "run_seed_sweep"]


@dataclass
class SeedOutcome:
    seed: int
    total_picola: int
    total_nova: int
    picola_wins: int
    nova_wins: int
    ties: int

    @property
    def nova_overhead(self) -> float:
        if not self.total_picola:
            return 0.0
        return (
            self.total_nova - self.total_picola
        ) / self.total_picola


@dataclass
class SeedSweepReport:
    fsms: List[str]
    outcomes: List[SeedOutcome] = field(default_factory=list)

    def mean_overhead(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.nova_overhead for o in self.outcomes) / len(
            self.outcomes
        )

    def overhead_stddev(self) -> float:
        n = len(self.outcomes)
        if n < 2:
            return 0.0
        mean = self.mean_overhead()
        var = sum(
            (o.nova_overhead - mean) ** 2 for o in self.outcomes
        ) / (n - 1)
        return math.sqrt(var)

    def picola_never_behind(self) -> bool:
        return all(
            o.total_picola <= o.total_nova for o in self.outcomes
        )

    def render(self) -> str:
        rows = [
            [
                f"seed {o.seed}",
                o.total_picola,
                o.total_nova,
                f"{100 * o.nova_overhead:.1f}%",
                o.picola_wins,
                o.nova_wins,
                o.ties,
            ]
            for o in self.outcomes
        ]
        table = render_table(
            [
                "run", "PICOLA", "NOVA", "overhead",
                "P-wins", "N-wins", "ties",
            ],
            rows,
            title="Seed sweep - Table I stability across FSM draws",
        )
        return table + (
            f"\nmean NOVA overhead {100 * self.mean_overhead():.1f}% "
            f"(stddev {100 * self.overhead_stddev():.1f} points) over "
            f"{len(self.outcomes)} seeds"
        )


def run_seed_sweep(
    fsms: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    *,
    nova_seed: int = 1,
    verbose: bool = False,
) -> SeedSweepReport:
    """Re-run the quick Table I comparison for several FSM draws."""
    if fsms is None:
        fsms = [f for f in QUICK_FSMS if BENCHMARKS[f].source != "file"]
    report = SeedSweepReport(fsms=list(fsms))
    for seed in seeds:
        total_p = total_n = wins_p = wins_n = ties = 0
        for name in fsms:
            fsm = load_benchmark(name, seed=seed)
            cset = derive_face_constraints(fsm)
            pic = picola_encode(cset)
            nov = nova_encode(cset, seed=nova_seed)
            cubes_p = evaluate_encoding(pic.encoding, cset).total_cubes
            cubes_n = evaluate_encoding(nov.encoding, cset).total_cubes
            total_p += cubes_p
            total_n += cubes_n
            wins_p += cubes_p < cubes_n
            wins_n += cubes_n < cubes_p
            ties += cubes_p == cubes_n
        outcome = SeedOutcome(
            seed=seed,
            total_picola=total_p,
            total_nova=total_n,
            picola_wins=wins_p,
            nova_wins=wins_n,
            ties=ties,
        )
        report.outcomes.append(outcome)
        if verbose:
            print(
                f"seed {seed}: picola={total_p} nova={total_n}",
                flush=True,
            )
    return report
