"""Seed-stability sweep: are the conclusions generator-independent?

The benchmark machines are seeded synthetic stand-ins (DESIGN.md §2),
so a fair question is whether Table I's conclusions depend on the
particular draw.  ``run_seed_sweep`` regenerates the quick Table I
comparison under several FSM-generator seeds and reports, per seed,
the PICOLA/NOVA totals and win-loss record, plus aggregate mean and
spread — the reproduction's robustness check.

Each ``seed/fsm`` cell runs behind the :mod:`repro.runtime` fault
boundary and is checkpointed as soon as it completes, so a killed
sweep resumes from the last finished benchmark (``--resume`` in the
CLI) and a single pathological draw degrades to a recorded failure
instead of sinking the whole sweep.
"""

from __future__ import annotations

import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..encoding import derive_face_constraints, evaluate_encoding
from ..fsm import BENCHMARKS, load_benchmark
from ..runtime import Budget, Checkpoint, faults
from ..runtime.checkpoint import payload_failed, resumable
from ..solvers import get_solver
from .parallel import Unit, run_units
from .report import render_table
from .shard import ShardSpec, StreamWriter, build_meta, resolve_shard
from .table1 import QUICK_FSMS

__all__ = ["SeedSweepReport", "run_seed_sweep"]


@dataclass
class SeedOutcome:
    seed: int
    total_picola: int
    total_nova: int
    picola_wins: int
    nova_wins: int
    ties: int

    @property
    def nova_overhead(self) -> float:
        if not self.total_picola:
            return 0.0
        return (
            self.total_nova - self.total_picola
        ) / self.total_picola


@dataclass
class SeedSweepReport:
    fsms: List[str]
    outcomes: List[SeedOutcome] = field(default_factory=list)
    #: benchmarks that failed, as (seed, fsm) -> reason
    failures: Dict[Tuple[int, str], str] = field(default_factory=dict)
    #: seeds excluded entirely because no cell of theirs completed —
    #: aggregating them would inject fake 0-cube totals (and a fake
    #: 0.0 overhead) into the mean/stddev statistics
    skipped_seeds: List[int] = field(default_factory=list)

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    def mean_overhead(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.nova_overhead for o in self.outcomes) / len(
            self.outcomes
        )

    def overhead_stddev(self) -> float:
        n = len(self.outcomes)
        if n < 2:
            return 0.0
        mean = self.mean_overhead()
        var = sum(
            (o.nova_overhead - mean) ** 2 for o in self.outcomes
        ) / (n - 1)
        return math.sqrt(var)

    def picola_never_behind(self) -> bool:
        return all(
            o.total_picola <= o.total_nova for o in self.outcomes
        )

    def render(self) -> str:
        rows = [
            [
                f"seed {o.seed}",
                o.total_picola,
                o.total_nova,
                f"{100 * o.nova_overhead:.1f}%",
                o.picola_wins,
                o.nova_wins,
                o.ties,
            ]
            for o in self.outcomes
        ]
        table = render_table(
            [
                "run", "PICOLA", "NOVA", "overhead",
                "P-wins", "N-wins", "ties",
            ],
            rows,
            title="Seed sweep - Table I stability across FSM draws",
        )
        summary = (
            f"\nmean NOVA overhead {100 * self.mean_overhead():.1f}% "
            f"(stddev {100 * self.overhead_stddev():.1f} points) over "
            f"{len(self.outcomes)} seeds"
        )
        if self.failures:
            failed = ", ".join(
                f"seed {seed}/{fsm} ({reason})"
                for (seed, fsm), reason in self.failures.items()
            )
            summary += (
                f"\n{self.n_failed} benchmark(s) failed and were "
                f"excluded: {failed}"
            )
        if self.skipped_seeds:
            skipped = ", ".join(
                f"seed {seed}" for seed in self.skipped_seeds
            )
            summary += (
                f"\n{len(self.skipped_seeds)} seed(s) excluded from "
                f"the aggregate (no completed cells): {skipped}"
            )
        return table + summary


def _sweep_cell(
    name: str,
    seed: int,
    nova_seed: int,
    timeout: Optional[float],
) -> Dict[str, int]:
    """One (seed, fsm) comparison (runs inside the fault boundary)."""
    faults.trip("sweep.benchmark", key=f"{seed}/{name}")
    fsm = load_benchmark(name, seed=seed)
    cset = derive_face_constraints(fsm)
    pic = get_solver("picola").solve(
        cset, budget=Budget(seconds=timeout)
    )
    nov = get_solver("nova").solve(
        cset, options={"seed": nova_seed},
        budget=Budget(seconds=timeout),
    )
    return {
        "picola": evaluate_encoding(pic.encoding, cset).total_cubes,
        "nova": evaluate_encoding(nov.encoding, cset).total_cubes,
    }


def run_seed_sweep(
    fsms: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    *,
    nova_seed: int = 1,
    verbose: bool = False,
    timeout: Optional[float] = None,
    checkpoint: Optional[Union[str, pathlib.Path, Checkpoint]] = None,
    jobs: int = 1,
    retry_failed: bool = False,
    shard: Optional[Union[str, ShardSpec]] = None,
    stream: Optional[Union[str, pathlib.Path]] = None,
) -> SeedSweepReport:
    """Re-run the quick Table I comparison for several FSM draws.

    ``checkpoint`` records every completed ``seed/fsm`` cell —
    including failed ones, which resume as recorded failures unless
    ``retry_failed`` forces a re-run — so a killed sweep resumes from
    the last finished benchmark.  ``jobs`` fans the independent cells
    out to worker processes; results merge in submission order, so
    totals and the rendered table match a serial run exactly.

    A seed none of whose cells completed is *excluded* from the
    outcome rows (and listed in the summary) instead of contributing
    fake zero totals to the mean/stddev statistics.

    ``shard`` (``K/N``) runs only this host's slice of the
    ``seed/fsm`` cell grid; a seed whose cells are split across
    shards reports provisional per-shard totals — ``picola merge``
    over all N shard checkpoints rebuilds the exact unsharded table.
    ``stream`` appends one JSON line per completed cell.
    """
    if fsms is None:
        fsms = [f for f in QUICK_FSMS if BENCHMARKS[f].source != "file"]
    spec = resolve_shard(shard)
    all_keys = [
        f"{seed}/{name}" for seed in seeds for name in fsms
    ]
    meta: Optional[Dict[str, Any]] = None
    if spec is not None or stream is not None:
        meta = build_meta(
            "sweep", all_keys,
            {
                "fsms": list(fsms), "seeds": list(seeds),
                "nova_seed": nova_seed, "timeout": timeout,
            },
            spec,
        )
    selected = (
        set(spec.partition(all_keys)) if spec is not None
        else set(all_keys)
    )
    ckpt: Optional[Checkpoint] = None
    if checkpoint is not None:
        ckpt = (
            checkpoint if isinstance(checkpoint, Checkpoint)
            else Checkpoint(
                checkpoint, experiment="sweep",
                meta=meta if spec is not None else None,
            )
        )
    writer = (
        StreamWriter(stream, meta) if stream is not None else None
    )
    report = SeedSweepReport(fsms=list(fsms))
    resumed: Dict[str, Dict] = {}
    units: List[Unit] = []
    for seed in seeds:
        for name in fsms:
            key = f"{seed}/{name}"
            if key not in selected:
                continue
            payload = resumable(ckpt, key, retry_failed)
            if payload is not None:
                resumed[key] = payload
            else:
                units.append(Unit(
                    key=key, fn=_sweep_cell,
                    args=(name, seed, nova_seed, timeout),
                ))
    outcomes = run_units(units, jobs=jobs)
    try:
        for seed in seeds:
            total_p = total_n = wins_p = wins_n = ties = 0
            attempted = completed = 0
            for name in fsms:
                key = f"{seed}/{name}"
                if key not in selected:
                    continue
                attempted += 1
                if key in resumed:
                    cell = resumed[key]
                    if writer is not None:
                        writer.emit_cell(key, cell, resumed=True)
                    if payload_failed(cell):
                        reason = cell.get("reason") or cell["status"]
                        report.failures[(seed, name)] = reason
                        if verbose:
                            print(
                                f"{key}: FAILED ({reason}, resumed "
                                "from checkpoint)",
                                flush=True,
                            )
                        continue
                    if verbose:
                        print(
                            f"{key}: resumed from checkpoint",
                            flush=True,
                        )
                else:
                    outcome = next(outcomes)
                    if not outcome.ok:
                        failure = {
                            "status": outcome.status,
                            "reason": outcome.reason,
                            "error": outcome.error,
                        }
                        report.failures[(seed, name)] = outcome.reason
                        if ckpt is not None:
                            ckpt.mark_done(key, failure)
                        if writer is not None:
                            writer.emit_cell(key, failure)
                        if verbose:
                            print(
                                f"{key}: FAILED ({outcome.reason})",
                                flush=True,
                            )
                        continue
                    cell = outcome.value
                    if ckpt is not None:
                        ckpt.mark_done(key, cell)
                    if writer is not None:
                        writer.emit_cell(key, cell)
                cubes_p = cell["picola"]
                cubes_n = cell["nova"]
                total_p += cubes_p
                total_n += cubes_n
                wins_p += cubes_p < cubes_n
                wins_n += cubes_n < cubes_p
                ties += cubes_p == cubes_n
                completed += 1
            if attempted == 0:
                # every cell of this seed belongs to another shard
                continue
            if completed == 0:
                # every attempted cell failed: an all-zero SeedOutcome
                # would smuggle a fake 0.0 nova_overhead into
                # mean_overhead()/overhead_stddev()
                report.skipped_seeds.append(seed)
                if verbose:
                    print(
                        f"seed {seed}: skipped (no completed cells)",
                        flush=True,
                    )
                continue
            outcome_row = SeedOutcome(
                seed=seed,
                total_picola=total_p,
                total_nova=total_n,
                picola_wins=wins_p,
                nova_wins=wins_n,
                ties=ties,
            )
            report.outcomes.append(outcome_row)
            if verbose:
                print(
                    f"seed {seed}: picola={total_p} nova={total_n}",
                    flush=True,
                )
    finally:
        if writer is not None:
            writer.close()
    return report
