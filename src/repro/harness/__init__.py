"""Experiment harness: regenerate the paper's tables and ablations."""

from .ablation import ABLATION_VARIANTS, AblationReport, run_ablation
from .merge import merge_files
from .parallel import Unit, resolve_jobs, run_units
from .report import render_table
from .shard import ShardSpec, parse_shard, read_stream
from .table1 import QUICK_FSMS, Table1Report, Table1Row, run_table1
from .serialize import to_dict, to_json
from .sweep import SeedSweepReport, run_seed_sweep
from .table2 import QUICK_FSMS2, Table2Report, Table2Row, run_table2

__all__ = [
    "ShardSpec",
    "parse_shard",
    "read_stream",
    "merge_files",
    "ABLATION_VARIANTS",
    "AblationReport",
    "run_ablation",
    "render_table",
    "QUICK_FSMS",
    "Table1Report",
    "Table1Row",
    "run_table1",
    "QUICK_FSMS2",
    "Table2Report",
    "Table2Row",
    "run_table2",
    "to_dict",
    "to_json",
    "SeedSweepReport",
    "run_seed_sweep",
    "Unit",
    "resolve_jobs",
    "run_units",
]
