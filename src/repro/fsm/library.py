"""The benchmark library: IWLS-93-style FSMs for the paper's tables.

Four small classics are embedded as real KISS2 files constructed from
their textbook specifications (``lion``, ``train4``, ``shiftreg``,
``modulo12``).  Every machine named in the paper's Tables I/II is
registered here with the interface parameters published for the MCNC /
IWLS-93 set; those flow tables are produced by the seeded synthetic
generator (:mod:`repro.fsm.synth`) because the original files are not
redistributable — see DESIGN.md §2 for why this substitution preserves
the experiments' behaviour.  A few giants are scaled down (``scaled``
flag) to stay within pure-Python minimizer budgets; the scaling is
part of the registry so EXPERIMENTS.md can report it.
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass
from typing import Dict, List, Optional

from .kiss import parse_kiss
from .machine import Fsm
from .synth import synthesize_fsm

__all__ = ["BenchmarkSpec", "BENCHMARKS", "load_benchmark", "benchmark_names"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Registry entry for one benchmark machine."""

    name: str
    inputs: int
    outputs: int
    states: int
    terms: int
    source: str  # "file" or "synthetic"
    scaled_from: Optional[str] = None  # original parameters when scaled
    # paper reference values (Table I), None when not legible/reported
    paper_constraints: Optional[int] = None
    paper_cubes_nova: Optional[int] = None
    paper_cubes_enc: Optional[int] = None
    paper_cubes_picola: Optional[int] = None


def _spec(name, i, o, s, p, source="synthetic", scaled_from=None,
          pc=None, pn=None, pe=None, pp=None) -> BenchmarkSpec:
    return BenchmarkSpec(
        name, i, o, s, p, source, scaled_from,
        paper_constraints=pc, paper_cubes_nova=pn,
        paper_cubes_enc=pe, paper_cubes_picola=pp,
    )


# Interface parameters follow the published MCNC/IWLS-93 tables; the
# paper_* fields record the values legible in the paper's Table I
# (the scan garbles several cells — those stay None).
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        # embedded real (textbook-specified) machines
        _spec("lion", 2, 1, 4, 11, source="file"),
        _spec("train4", 2, 1, 4, 14, source="file"),
        _spec("shiftreg", 1, 1, 8, 16, source="file"),
        _spec("modulo12", 1, 1, 12, 24, source="file"),
        _spec("dk27", 1, 2, 7, 14, source="file"),
        _spec("seq101", 1, 1, 3, 6, source="file"),
        _spec("vending", 2, 2, 4, 12, source="file"),
        # Table I / II machines (synthetic stand-ins)
        _spec("bbara", 4, 2, 10, 60, pc=4, pn=8, pp=5),
        _spec("bbsse", 7, 7, 16, 56),
        _spec("cse", 7, 7, 16, 91),
        _spec("dk14", 3, 5, 7, 56),
        _spec("ex3", 2, 2, 10, 36, pc=6, pn=8, pp=8),
        _spec("ex5", 2, 2, 9, 32, pp=10),
        _spec("ex7", 2, 2, 10, 36, pp=9),
        _spec("kirkman", 12, 6, 16, 370),
        _spec("lion9", 2, 1, 9, 25, pp=10),
        _spec("mark1", 5, 16, 15, 22, pc=4, pn=6, pp=5),
        _spec("opus", 5, 6, 10, 22, pc=2, pn=2, pp=2),
        _spec("train11", 2, 1, 11, 25, pp=12),
        _spec("s8", 4, 1, 5, 20, pp=7),
        _spec("s27", 4, 1, 6, 34, pp=7),
        _spec("dk16", 2, 3, 27, 108),
        _spec("donfile", 2, 1, 24, 96),
        _spec("ex1", 9, 19, 20, 138),
        _spec("ex2", 2, 2, 19, 72, pp=12),
        _spec("keyb", 7, 2, 19, 170, pp=41),
        _spec("s386", 7, 7, 13, 64),
        _spec("s1", 8, 6, 20, 107),
        _spec("s1a", 8, 6, 20, 107),
        _spec("sand", 11, 9, 32, 184),
        _spec("tma", 7, 6, 20, 44, pp=16),
        _spec("pma", 8, 8, 24, 73, pp=30),
        _spec("styr", 9, 10, 30, 166),
        _spec(
            "tbk", 6, 3, 32, 180,
            scaled_from="6i/3o/32s/1569p (term count reduced)",
        ),
        _spec(
            "s420", 12, 2, 18, 137,
            scaled_from="19i/2o/18s/137p (inputs reduced)",
            pp=17,
        ),
        _spec(
            "s510", 12, 7, 47, 77,
            scaled_from="19i/7o/47s/77p (inputs reduced)",
            pp=17,
        ),
        _spec("planet", 7, 19, 48, 115),
        _spec(
            "s820", 12, 19, 25, 232,
            scaled_from="18i/19o/25s/232p (inputs reduced)",
            pp=66,
        ),
        _spec(
            "s832", 12, 19, 25, 245,
            scaled_from="18i/19o/25s/245p (inputs reduced)",
            pp=63,
        ),
        _spec(
            "scf", 12, 20, 121, 166,
            scaled_from="27i/56o/121s/166p (interface reduced)",
            pp=21,
        ),
        # additional classic machines (not in the paper's tables, but
        # part of the same benchmark family; useful for wider sweeps)
        _spec("bbtas", 2, 2, 6, 24),
        _spec("beecount", 3, 4, 7, 28),
        _spec("dk15", 3, 5, 4, 32),
        _spec("dk17", 2, 3, 8, 32),
        _spec("dk512", 1, 3, 15, 30),
        _spec("ex4", 6, 9, 14, 21),
        _spec("ex6", 5, 8, 8, 34),
        _spec("mc", 3, 5, 4, 10),
        _spec("tav", 4, 4, 4, 49),
        _spec("sse", 7, 7, 16, 56),
        _spec("s1488", 8, 19, 48, 251),
        _spec("s1494", 8, 19, 48, 250),
    ]
}

# The paper's table rows, in order.
TABLE1_FSMS: List[str] = [
    "bbara", "bbsse", "cse", "dk14", "ex3", "ex5", "ex7", "kirkman",
    "lion9", "mark1", "opus", "train11", "s8", "s27", "dk16", "donfile",
    "ex1", "ex2", "keyb", "s386", "s1", "s1a", "sand", "tma", "pma",
    "styr", "tbk", "s420", "s510", "planet", "s820", "s832", "scf",
]

TABLE2_FSMS: List[str] = [
    "s1", "s1a", "dk16", "donfile", "ex1", "ex2", "keyb", "s386",
    "sand", "tma", "pma", "styr", "tbk", "s420", "s510", "planet",
    "s820", "s832", "scf",
]


def benchmark_names() -> List[str]:
    return sorted(BENCHMARKS)


def load_benchmark(name: str, seed: int = 0) -> Fsm:
    """Load (or synthesize) a registered benchmark machine."""
    try:
        spec = BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; see benchmark_names()"
        ) from None
    if spec.source == "file":
        data = (
            importlib.resources.files("repro.fsm")
            .joinpath(f"data/{name}.kiss2")
            .read_text()
        )
        fsm = parse_kiss(data, name=name)
    else:
        fsm = synthesize_fsm(
            name, spec.inputs, spec.outputs, spec.states, spec.terms,
            seed=seed,
        )
    return fsm
