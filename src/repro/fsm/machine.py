"""Finite state machine model (KISS2 semantics).

An :class:`Fsm` is a list of symbolic transitions
``(input cube, present state, next state, output cube)`` exactly as in
a ``.kiss2`` file.  Inputs and outputs are strings over ``0 1 -`` and
states are symbolic names; ``next state`` and outputs may be the
don't-care marker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..runtime import InvalidSpecError

__all__ = ["Transition", "Fsm"]

DC_STATE = "*"  # kiss don't-care next state


@dataclass(frozen=True)
class Transition:
    """One symbolic product term of the FSM's flow table."""

    inputs: str
    present: str
    next: str
    outputs: str

    def __post_init__(self) -> None:
        if set(self.inputs) - {"0", "1", "-"}:
            raise InvalidSpecError(f"bad input field {self.inputs!r}")
        if set(self.outputs) - {"0", "1", "-"}:
            raise InvalidSpecError(f"bad output field {self.outputs!r}")


@dataclass
class Fsm:
    """A symbolic finite state machine."""

    name: str
    transitions: List[Transition] = field(default_factory=list)
    reset_state: Optional[str] = None

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        return len(self.transitions[0].inputs) if self.transitions else 0

    @property
    def n_outputs(self) -> int:
        return len(self.transitions[0].outputs) if self.transitions else 0

    @property
    def states(self) -> List[str]:
        """All state names, in order of first appearance (reset first)."""
        seen: Dict[str, None] = {}
        if self.reset_state is not None:
            seen[self.reset_state] = None
        for t in self.transitions:
            if t.present != DC_STATE:
                seen.setdefault(t.present, None)
            if t.next != DC_STATE:
                seen.setdefault(t.next, None)
        return list(seen)

    @property
    def n_states(self) -> int:
        return len(self.states)

    def min_code_length(self) -> int:
        """ceil(log2(n_states)): the minimum encoding length."""
        n = self.n_states
        if n <= 1:
            return 1
        return (n - 1).bit_length()

    # ------------------------------------------------------------------
    def add(self, inputs: str, present: str, next_state: str,
            outputs: str) -> None:
        t = Transition(inputs, present, next_state, outputs)
        if self.transitions:
            if len(inputs) != self.n_inputs:
                raise InvalidSpecError("inconsistent input width")
            if len(outputs) != self.n_outputs:
                raise InvalidSpecError("inconsistent output width")
        self.transitions.append(t)

    def validate(self) -> None:
        """Raise ValueError on structural problems."""
        if not self.transitions:
            raise InvalidSpecError(f"{self.name}: no transitions")
        widths = {(len(t.inputs), len(t.outputs)) for t in self.transitions}
        if len(widths) != 1:
            raise InvalidSpecError(f"{self.name}: inconsistent field widths")
        mentioned = {t.present for t in self.transitions} | {
            t.next for t in self.transitions
        }
        if self.reset_state is not None and self.reset_state not in mentioned:
            raise InvalidSpecError(f"{self.name}: unknown reset state")
        # every state should be reachable as a present state target of
        # at least one transition or be the reset state; we only warn by
        # validation here when a next state never appears as present
        present = {t.present for t in self.transitions}
        for t in self.transitions:
            if t.next != DC_STATE and t.next not in present:
                # legal in KISS (terminal states) -- tolerated
                pass

    def stats(self) -> Dict[str, int]:
        return {
            "inputs": self.n_inputs,
            "outputs": self.n_outputs,
            "states": self.n_states,
            "terms": len(self.transitions),
        }

    def transitions_from(self, state: str) -> List[Transition]:
        return [t for t in self.transitions if t.present == state]

    def next_states_of(self, state: str) -> Set[str]:
        return {
            t.next
            for t in self.transitions_from(state)
            if t.next != DC_STATE
        }

    def conflicting_rows(self) -> List[Tuple[Transition, Transition]]:
        """Pairs of same-state rows that overlap with different behaviour.

        Overlapping rows with identical (next, outputs) are harmless
        duplication; overlapping rows that disagree make the machine
        nondeterministic and are reported here.
        """
        conflicts: List[Tuple[Transition, Transition]] = []
        by_state: Dict[str, List[Transition]] = {}
        for t in self.transitions:
            by_state.setdefault(t.present, []).append(t)
        for rows in by_state.values():
            for i, a in enumerate(rows):
                for b in rows[i + 1 :]:
                    overlap = all(
                        x == "-" or y == "-" or x == y
                        for x, y in zip(a.inputs, b.inputs)
                    )
                    if not overlap:
                        continue
                    same = a.next == b.next and all(
                        x == y or "-" in (x, y)
                        for x, y in zip(a.outputs, b.outputs)
                    )
                    if not same:
                        conflicts.append((a, b))
        return conflicts

    def check_deterministic(self) -> None:
        """Raise InvalidSpecError when overlapping rows disagree."""
        conflicts = self.conflicting_rows()
        if conflicts:
            a, b = conflicts[0]
            raise InvalidSpecError(
                f"{self.name}: nondeterministic rows for state "
                f"{a.present}: ({a.inputs} -> {a.next}/{a.outputs}) vs "
                f"({b.inputs} -> {b.next}/{b.outputs})"
                + (
                    f" and {len(conflicts) - 1} more conflict(s)"
                    if len(conflicts) > 1
                    else ""
                )
            )

    def completely_specified(self) -> bool:
        """True when every (input minterm, state) pair has a transition.

        Checked by symbolic cube counting per state, so it stays cheap
        even for wide input fields.
        """
        for state in self.states:
            total = 0
            for t in self.transitions_from(state):
                total += 1 << t.inputs.count("-")
            if total < (1 << self.n_inputs):
                return False
        return True

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Fsm({self.name!r}, i={s['inputs']}, o={s['outputs']}, "
            f"s={s['states']}, p={s['terms']})"
        )
