"""Seeded synthetic FSM generator.

Used to stand in for IWLS-93 benchmark machines whose exact flow
tables are not redistributable here (see DESIGN.md §2).  Given the
published interface parameters ``(inputs, outputs, states, terms)``
the generator produces a deterministic, connected, completely
specified machine whose *symbolic structure* resembles a real
controller — which is what the encoding experiments actually exercise:

* the input space is tiled by a small set of shared *partition
  templates* (recursive cube splitting); each state uses one template,
  so rows of different states align on identical input cubes;
* every ``(template, cube)`` slot has a *default behaviour* (next
  state + output word) that most states follow, with per-state
  deviations.  Groups of states following the same default produce
  mergeable rows under multi-valued minimization — exactly the origin
  of face constraints on the real benchmarks;
* outputs come from a limited sparse alphabet and next states favour a
  few hub states, giving the skewed structure real controllers have;
* connectivity is guaranteed by retargeting one row per state along a
  spanning tree, consuming *deviated* rows first so the shared
  defaults (the source of the face constraints) survive.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Sequence, Tuple

from ..runtime import InvalidSpecError

from .machine import Fsm

__all__ = ["synthesize_fsm"]


def synthesize_fsm(
    name: str,
    n_inputs: int,
    n_outputs: int,
    n_states: int,
    n_terms: int,
    seed: int = 0,
) -> Fsm:
    """Generate a deterministic synthetic FSM with the given interface."""
    if n_states < 1:
        raise InvalidSpecError("need at least one state")
    if n_terms < n_states:
        n_terms = n_states
    # zlib.crc32 is stable across processes (str.__hash__ is salted)
    rng = random.Random(zlib.crc32(name.encode()) * 1000003 + seed)
    states = [f"st{i}" for i in range(n_states)]
    hubs = states[: max(1, n_states // 6)]
    alphabet = _output_alphabet(rng, n_outputs, n_states)

    # rows per state: `base` everywhere, +1 for `extra` states, so the
    # total matches the published term count (input space permitting)
    base = max(1, n_terms // n_states)
    extra = max(0, n_terms - base * n_states)
    big_states = set(rng.sample(states, min(extra, n_states)))
    templates = {
        size: _partition_inputs(rng, n_inputs, size)
        for size in sorted({base, base + 1})
    }
    # sparse machines cannot afford many deviations or nothing merges
    deviation = 0.45 if base >= 2 else 0.25

    defaults: Dict[int, List[Tuple[str, str]]] = {}
    for size, template in templates.items():
        defaults[size] = [
            (
                rng.choice(hubs + rng.sample(states, min(2, n_states))),
                rng.choice(alphabet),
            )
            for _ in template
        ]

    fsm = Fsm(name)
    deviated_rows: List[int] = []
    for state in states:
        size = base + 1 if state in big_states else base
        template = templates[size]
        slot_defaults = defaults[size]
        pool = [state] + hubs + rng.sample(states, min(3, n_states))
        for cube, (def_next, def_out) in zip(template, slot_defaults):
            if rng.random() < deviation:
                nxt = rng.choice(pool)
                out = rng.choice(alphabet)
                deviated_rows.append(len(fsm.transitions))
            else:
                nxt, out = def_next, def_out
            fsm.add(cube, state, nxt, out)

    _wire_spanning_tree(rng, fsm, states, set(deviated_rows))
    fsm.reset_state = states[0]
    fsm.validate()
    return fsm


def _output_alphabet(
    rng: random.Random, n_outputs: int, n_states: int
) -> List[str]:
    """A limited set of output vectors, sparse like controller outputs."""
    size = max(2, min(2 * n_states // 3 + 1, 10))
    alphabet = {"0" * n_outputs}
    attempts = 0
    while len(alphabet) < size and attempts < 10 * size:
        attempts += 1
        word = ["0"] * n_outputs
        for _ in range(max(1, n_outputs // 4)):
            word[rng.randrange(n_outputs)] = "1"
        alphabet.add("".join(word))
    return sorted(alphabet)


def _partition_inputs(
    rng: random.Random, n_inputs: int, n_rows: int
) -> List[str]:
    """Split the input space into exactly ``n_rows`` disjoint cubes.

    Recursive binary splitting on a randomly chosen still-free
    variable; covers the whole space, rows are pairwise disjoint.
    """
    if n_inputs < 30:
        n_rows = min(n_rows, 1 << n_inputs)
    cubes = ["-" * n_inputs]
    while len(cubes) < n_rows:
        # split the cube with the most free positions
        idx = max(range(len(cubes)), key=lambda i: cubes[i].count("-"))
        cube = cubes.pop(idx)
        free = [i for i, ch in enumerate(cube) if ch == "-"]
        if not free:
            cubes.append(cube)
            break
        var = rng.choice(free)
        for bit in "01":
            cubes.append(cube[:var] + bit + cube[var + 1 :])
    rng.shuffle(cubes)
    return cubes


def _wire_spanning_tree(
    rng: random.Random,
    fsm: Fsm,
    states: Sequence[str],
    deviated_rows: set,
) -> None:
    """Guarantee reachability by retargeting edges along a spanning tree.

    States are wired in index order: every state after the first gets
    one incoming edge from an already-wired state with a free
    transition slot.  Each slot is used for at most one child, so the
    procedure always terminates (total slots >= number of states).
    Deviated rows are consumed before default rows so the shared
    defaults — the origin of the face constraints — survive wiring.
    """
    if len(states) <= 1:
        return
    by_state: Dict[str, List[int]] = {}
    for i, t in enumerate(fsm.transitions):
        by_state.setdefault(t.present, []).append(i)

    def slot_order(slots: List[int]) -> List[int]:
        rng.shuffle(slots)
        # deviated last so .pop() takes them first
        return sorted(slots, key=lambda i: i in deviated_rows)

    free_slots: List[int] = slot_order(list(by_state.get(states[0], [])))
    for child in states[1:]:
        if not free_slots:
            raise AssertionError(
                "spanning-tree wiring ran out of transition slots"
            )
        idx = free_slots.pop()
        old = fsm.transitions[idx]
        fsm.transitions[idx] = type(old)(
            old.inputs, old.present, child, old.outputs
        )
        free_slots = slot_order(
            free_slots + list(by_state.get(child, []))
        )