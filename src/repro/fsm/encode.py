"""Bridges from symbolic FSMs to PLAs.

Two views are needed by the paper's flow:

* :func:`fsm_to_symbolic_cover` — the *input-encoding model*: the
  present state is one multi-valued input variable, the next state is
  replaced by a one-hot code (exactly the paper's Table I setup:
  "derived from IWLS 93 FSM benchmark substituting next state field by
  a one-hot code").  Multi-valued minimization of this cover yields the
  face constraints.

* :func:`encode_fsm` — the encoded machine: a binary multi-output PLA
  (primary inputs + state bits -> next-state bits + primary outputs)
  under a given state encoding; minimizing it measures the quality of
  the encoding (the paper's Table II "size").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..cubes import Space
from ..espresso import Pla
from ..runtime import InvalidSpecError
from .machine import DC_STATE, Fsm

__all__ = ["fsm_to_symbolic_cover", "encode_fsm", "unused_code_cubes"]


def fsm_to_symbolic_cover(
    fsm: Fsm, with_dc: bool = False
) -> Tuple[Space, List[int], List[str]]:
    """The FSM as a multi-valued cover for symbolic minimization.

    Returns ``(space, cover, states)`` — or ``(space, cover, dc,
    states)`` when ``with_dc`` is true — where ``space`` has one
    binary part per primary input, one MV part of size ``n_states``
    (the present-state variable) and one output part of size
    ``n_states + n_outputs`` (one-hot next state, then the outputs).

    The don't-care cover collects explicit ``-`` outputs, ``*`` next
    states, and — for incompletely specified machines — the
    (state, input) combinations with no row at all.
    """
    states = fsm.states
    index = {s: i for i, s in enumerate(states)}
    n_in, n_st, n_out = fsm.n_inputs, len(states), fsm.n_outputs
    sizes = [2] * n_in + [n_st, n_st + n_out]
    labels = [f"x{i}" for i in range(n_in)] + ["state", "out"]
    space = Space(sizes, labels)
    full_out = (1 << (n_st + n_out)) - 1
    cover: List[int] = []
    dc: List[int] = []
    for t in fsm.transitions:
        fields = [_input_field(ch) for ch in t.inputs]
        if t.present == DC_STATE:
            fields.append((1 << n_st) - 1)
        else:
            fields.append(1 << index[t.present])
        out_field = 0
        dc_field = 0
        if t.next != DC_STATE:
            out_field |= 1 << index[t.next]
        else:
            dc_field |= (1 << n_st) - 1
        for o, ch in enumerate(t.outputs):
            if ch == "1":
                out_field |= 1 << (n_st + o)
            elif ch == "-":
                dc_field |= 1 << (n_st + o)
        if out_field:
            cover.append(space.make_cube(fields + [out_field]))
        if dc_field:
            dc.append(space.make_cube(fields + [dc_field]))
    if with_dc:
        # unspecified (state, input) territory is fully don't-care
        from ..cubes import complement

        input_state_sizes = [2] * n_in + [n_st]
        sub = Space(input_state_sizes)
        specified = []
        for t in fsm.transitions:
            fields = [_input_field(ch) for ch in t.inputs]
            if t.present == DC_STATE:
                fields.append((1 << n_st) - 1)
            else:
                fields.append(1 << index[t.present])
            specified.append(sub.make_cube(fields))
        for hole in complement(sub, specified):
            fields = [sub.field(hole, p) for p in range(sub.num_parts)]
            dc.append(space.make_cube(fields + [full_out]))
        return space, cover, dc, states
    return space, cover, states


def _input_field(ch: str) -> int:
    return {"0": 0b01, "1": 0b10, "-": 0b11}[ch]


def unused_code_cubes(
    n_bits: int, used_codes: Sequence[int]
) -> List[Tuple[int, ...]]:
    """All code words of ``n_bits`` bits not present in ``used_codes``.

    Returned as bit tuples (MSB first) for readability at call sites.
    """
    used = set(used_codes)
    result = []
    for code in range(1 << n_bits):
        if code not in used:
            result.append(
                tuple((code >> (n_bits - 1 - b)) & 1 for b in range(n_bits))
            )
    return result


def encode_fsm(
    fsm: Fsm,
    codes: Dict[str, int],
    n_bits: Optional[int] = None,
) -> Pla:
    """Build the encoded machine's PLA under a state encoding.

    ``codes`` maps state name -> integer code.  The returned PLA has
    ``n_inputs + n_bits`` binary inputs and ``n_bits + n_outputs``
    outputs.  Unused state codes and don't-care next states / outputs
    land in the don't-care set (espresso ``fr`` semantics).
    """
    states = fsm.states
    if set(codes) < set(states):
        missing = sorted(set(states) - set(codes))
        raise InvalidSpecError(f"codes missing for states: {missing}")
    if n_bits is None:
        n_bits = max(max(codes[s] for s in states).bit_length(), 1)
    if len({codes[s] for s in states}) != len(states):
        raise InvalidSpecError("state encoding is not injective")
    n_in, n_out = fsm.n_inputs, fsm.n_outputs
    pla = Pla(n_in + n_bits, n_bits + n_out)
    space = pla.space
    out_part = space.num_parts - 1

    for t in fsm.transitions:
        fields = [_input_field(ch) for ch in t.inputs]
        fields += _code_fields(codes[t.present], n_bits)
        on_field = 0
        dc_field = 0
        if t.next == DC_STATE:
            dc_field |= (1 << n_bits) - 1
        else:
            nxt = codes[t.next]
            for b in range(n_bits):
                if (nxt >> (n_bits - 1 - b)) & 1:
                    on_field |= 1 << b
        for o, ch in enumerate(t.outputs):
            if ch == "1":
                on_field |= 1 << (n_bits + o)
            elif ch == "-":
                dc_field |= 1 << (n_bits + o)
        base = space.make_cube(fields + [(1 << (n_bits + n_out)) - 1])
        if on_field:
            pla.onset.append(space.with_field(base, out_part, on_field))
        if dc_field:
            pla.dcset.append(space.with_field(base, out_part, dc_field))

    # unused codes: everything is don't care there
    used = [codes[s] for s in states]
    for bits in unused_code_cubes(n_bits, used):
        fields = [0b11] * n_in
        fields += [0b10 if b else 0b01 for b in bits]
        fields.append((1 << (n_bits + n_out)) - 1)
        pla.dcset.append(space.make_cube(fields))
    return pla


def _code_fields(code: int, n_bits: int) -> List[int]:
    return [
        0b10 if (code >> (n_bits - 1 - b)) & 1 else 0b01
        for b in range(n_bits)
    ]
