"""FSM substrate: KISS2 machines, benchmark library, PLA bridges."""

from .encode import encode_fsm, fsm_to_symbolic_cover, unused_code_cubes
from .kiss import format_kiss, parse_kiss
from .library import (
    BENCHMARKS,
    TABLE1_FSMS,
    TABLE2_FSMS,
    BenchmarkSpec,
    benchmark_names,
    load_benchmark,
)
from .machine import DC_STATE, Fsm, Transition
from .reduce import ReductionResult, equivalent_state_classes, reduce_states
from .simulate import (
    CosimMismatch,
    EncodedSimulator,
    SymbolicSimulator,
    cosimulate,
    random_input_sequence,
)
from .synth import synthesize_fsm

__all__ = [
    "encode_fsm",
    "fsm_to_symbolic_cover",
    "unused_code_cubes",
    "format_kiss",
    "parse_kiss",
    "BENCHMARKS",
    "TABLE1_FSMS",
    "TABLE2_FSMS",
    "BenchmarkSpec",
    "benchmark_names",
    "load_benchmark",
    "DC_STATE",
    "Fsm",
    "Transition",
    "ReductionResult",
    "equivalent_state_classes",
    "reduce_states",
    "CosimMismatch",
    "EncodedSimulator",
    "SymbolicSimulator",
    "cosimulate",
    "random_input_sequence",
    "synthesize_fsm",
]
