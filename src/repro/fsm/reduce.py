"""State minimization for completely specified machines.

Classic Moore-style partition refinement: states start grouped by
their output behaviour and split until no input distinguishes two
states of a block; each block then collapses to one state.  Encoding
papers of the era (including this one's reference [14] lineage) assume
the flow table has already been state-minimized — this module makes
that preprocessing available, and the harness can apply it before
deriving constraints.

Incompletely specified machines are out of scope (compatible-state
minimization is NP-hard and a different algorithm entirely); for those
``reduce_states`` raises unless the unspecified behaviour is absent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime import InvalidSpecError

from .machine import DC_STATE, Fsm, Transition

__all__ = ["reduce_states", "equivalent_state_classes", "ReductionResult"]


class ReductionResult:
    """Outcome of a state minimization."""

    def __init__(
        self,
        fsm: Fsm,
        classes: List[List[str]],
        representative: Dict[str, str],
    ) -> None:
        self.fsm = fsm
        self.classes = classes
        self.representative = representative

    @property
    def removed(self) -> int:
        return sum(len(c) - 1 for c in self.classes)

    def __repr__(self) -> str:
        return (
            f"ReductionResult({self.fsm.name!r}, "
            f"{len(self.classes)} classes, removed={self.removed})"
        )


def _behavior(fsm: Fsm, state: str, inputs: str) -> Tuple[str, str]:
    """(next, outputs) for a fully specified input vector."""
    for t in fsm.transitions_from(state):
        if all(p in ("-", ch) for p, ch in zip(t.inputs, inputs)):
            return t.next, t.outputs
    raise InvalidSpecError(
        f"{fsm.name}: state {state} has no row for input {inputs}"
    )


def _check_supported(fsm: Fsm) -> None:
    if not fsm.completely_specified():
        raise InvalidSpecError(
            f"{fsm.name} is incompletely specified; partition "
            "refinement requires a completely specified machine"
        )
    for t in fsm.transitions:
        if t.next == DC_STATE or "-" in t.outputs:
            raise InvalidSpecError(
                f"{fsm.name} has don't-care behaviour; partition "
                "refinement requires fully specified rows"
            )


def equivalent_state_classes(fsm: Fsm) -> List[List[str]]:
    """Equivalence classes of states (partition refinement).

    Exponential in the number of inputs only through the input-vector
    enumeration (2^n_inputs signature entries per state), which is fine
    for the controller-sized machines this repository targets.
    """
    _check_supported(fsm)
    states = fsm.states
    vectors = [
        format(x, f"0{fsm.n_inputs}b")
        for x in range(1 << fsm.n_inputs)
    ]
    # initial partition: identical output behaviour on every input
    block_of: Dict[str, int] = {}
    signature_to_block: Dict[Tuple[str, ...], int] = {}
    for s in states:
        signature = tuple(_behavior(fsm, s, v)[1] for v in vectors)
        block_of[s] = signature_to_block.setdefault(
            signature, len(signature_to_block)
        )
    while True:
        refine: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        new_block_of: Dict[str, int] = {}
        for s in states:
            successors = tuple(
                block_of[_behavior(fsm, s, v)[0]] for v in vectors
            )
            key = (block_of[s], successors)
            new_block_of[s] = refine.setdefault(key, len(refine))
        if len(set(new_block_of.values())) == len(
            set(block_of.values())
        ):
            block_of = new_block_of
            break
        block_of = new_block_of
    classes: Dict[int, List[str]] = {}
    for s in states:
        classes.setdefault(block_of[s], []).append(s)
    return [classes[b] for b in sorted(classes)]


def reduce_states(fsm: Fsm) -> ReductionResult:
    """Collapse equivalent states; returns the minimized machine.

    The representative of each class is its first state in ``states``
    order, so the reset state survives as itself.
    """
    classes = equivalent_state_classes(fsm)
    representative: Dict[str, str] = {}
    for group in classes:
        rep = group[0]
        for s in group:
            representative[s] = rep
    reduced = Fsm(fsm.name + "_min")
    seen_rows = set()
    for t in fsm.transitions:
        if representative[t.present] != t.present:
            continue  # only keep the representative's rows
        row = (
            t.inputs,
            t.present,
            representative[t.next],
            t.outputs,
        )
        if row in seen_rows:
            continue
        seen_rows.add(row)
        reduced.add(*row)
    if fsm.reset_state is not None:
        reduced.reset_state = representative[fsm.reset_state]
    reduced.validate()
    return ReductionResult(reduced, classes, representative)
