"""FSM simulation: symbolic machines and encoded implementations.

Two simulators with the same step interface:

* :class:`SymbolicSimulator` walks the KISS2 flow table directly;
* :class:`EncodedSimulator` evaluates an encoded machine's (minimized)
  PLA — next-state bits and outputs — against a state encoding.

``cosimulate`` drives both with the same input sequence and checks
that the encoded implementation refines the symbolic specification
(it must agree wherever the specification is defined; don't-care
outputs may be anything).  The integration tests use this to prove the
whole assign/encode/minimize pipeline preserves behaviour.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..espresso import Pla
from ..runtime import InvalidSpecError
from .machine import DC_STATE, Fsm

__all__ = [
    "SymbolicSimulator",
    "EncodedSimulator",
    "CosimMismatch",
    "cosimulate",
    "random_input_sequence",
]


class CosimMismatch(AssertionError):
    """The encoded machine diverged from the symbolic specification."""


class SymbolicSimulator:
    """Step through the KISS2 flow table."""

    def __init__(self, fsm: Fsm, reset: Optional[str] = None) -> None:
        self.fsm = fsm
        self.state = reset or fsm.reset_state or fsm.states[0]

    def step(self, inputs: str) -> Tuple[Optional[str], Optional[str]]:
        """Apply one input vector; returns (next_state, outputs).

        Returns ``(None, None)`` when the behaviour is unspecified for
        this (state, input) pair — the machine stays put and the
        co-simulation skips checking that step.
        """
        if len(inputs) != self.fsm.n_inputs:
            raise InvalidSpecError("input width mismatch")
        for t in self.fsm.transitions_from(self.state):
            if all(p in ("-", i) for p, i in zip(t.inputs, inputs)):
                if t.next == DC_STATE:
                    # any successor is acceptable; the caller decides
                    # how to resynchronize
                    return DC_STATE, t.outputs
                self.state = t.next
                return t.next, t.outputs
        return None, None


class EncodedSimulator:
    """Step through an encoded machine's PLA."""

    def __init__(
        self,
        pla: Pla,
        n_inputs: int,
        n_state_bits: int,
        reset_code: int,
    ) -> None:
        if pla.n_inputs != n_inputs + n_state_bits:
            raise InvalidSpecError("PLA shape does not match machine shape")
        self.pla = pla
        self.n_inputs = n_inputs
        self.n_state_bits = n_state_bits
        self.code = reset_code

    def step(self, inputs: str) -> Tuple[int, List[int]]:
        """Apply one input vector; returns (next_code, output bits).

        Hardware semantics: the SOP's on-set decides everything — a
        wire is 1 exactly when some product term fires (the don't-care
        set no longer exists once the cover is committed to gates).
        """
        from ..cubes import contains

        values = [int(ch) for ch in inputs]
        values += [
            (self.code >> (self.n_state_bits - 1 - b)) & 1
            for b in range(self.n_state_bits)
        ]
        space = self.pla.space
        raw = []
        for out in range(self.pla.n_outputs):
            m = space.minterm(values + [out])
            raw.append(
                1 if any(contains(c, m) for c in self.pla.onset) else 0
            )
        next_code = 0
        for b in range(self.n_state_bits):
            next_code = (next_code << 1) | raw[b]
        outputs = raw[self.n_state_bits :]
        self.code = next_code
        return next_code, outputs


def _resolve_rng(
    seed: Optional[int], rng: Optional[random.Random], where: str
) -> random.Random:
    """One explicit randomness source: ``rng`` wins, then ``seed``.

    Passing neither is deprecated — verification runs must be
    replayable from their recorded seed, so the implicit default
    (seed 0) now warns before falling back.
    """
    if rng is not None:
        if seed is not None:
            raise InvalidSpecError(f"{where}: pass seed or rng, not both")
        return rng
    if seed is None:
        warnings.warn(
            f"{where}: calling without seed= or rng= is deprecated; "
            "pass an explicit seed so the run is reproducible "
            "(falling back to seed 0)",
            DeprecationWarning,
            stacklevel=3,
        )
        seed = 0
    return random.Random(seed)


def random_input_sequence(
    n_inputs: int,
    length: int,
    seed: Optional[int] = None,
    *,
    rng: Optional[random.Random] = None,
) -> List[str]:
    """``length`` random input vectors from an explicit seed or rng."""
    rng = _resolve_rng(seed, rng, "random_input_sequence")
    return [
        "".join(rng.choice("01") for _ in range(n_inputs))
        for _ in range(length)
    ]


def cosimulate(
    fsm: Fsm,
    pla: Pla,
    codes: dict,
    n_bits: int,
    sequence: Optional[Sequence[str]] = None,
    *,
    steps: int = 256,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> int:
    """Run both simulators in lock step; returns checked-step count.

    Raises :class:`CosimMismatch` on the first divergence from the
    specified behaviour.  Unspecified (state, input) steps re-seed the
    encoded state from the symbolic one and are not counted.

    The input sequence may be passed explicitly, or generated from
    ``steps`` plus an explicit ``seed``/``rng`` (exactly
    :func:`random_input_sequence`), so verification is reproducible
    end-to-end from one recorded seed.
    """
    if sequence is None:
        sequence = random_input_sequence(
            fsm.n_inputs, steps, seed=seed, rng=rng
        )
    elif seed is not None or rng is not None:
        raise InvalidSpecError(
            "cosimulate: pass sequence or seed/rng, not both"
        )
    sym = SymbolicSimulator(fsm)
    enc = EncodedSimulator(
        pla, fsm.n_inputs, n_bits, codes[sym.state]
    )
    checked = 0
    for step_no, inputs in enumerate(sequence):
        before = sym.state
        want_next, want_out = sym.step(inputs)
        got_code, got_out = enc.step(inputs)
        if want_next is None or want_next == DC_STATE:
            # unspecified (or don't-care successor): resynchronize
            enc.code = codes[sym.state]
            continue
        want_code = codes[sym.state]
        if got_code != want_code:
            raise CosimMismatch(
                f"step {step_no}: from {before} on {inputs} expected "
                f"state {sym.state} (code {want_code:0{n_bits}b}), "
                f"got code {got_code:0{n_bits}b}"
            )
        for o, ch in enumerate(want_out):
            if ch == "-":
                continue
            if got_out[o] == -1:
                continue  # implementation may resolve dc either way
            if got_out[o] != int(ch):
                raise CosimMismatch(
                    f"step {step_no}: from {before} on {inputs} "
                    f"output {o} expected {ch}, got {got_out[o]}"
                )
        checked += 1
    return checked
