"""KISS2 format reader and writer.

The KISS2 format (used by the MCNC/IWLS benchmark sets and by NOVA,
SIS, STAMINA, ...) describes an FSM as::

    .i 2
    .o 1
    .s 4
    .p 8
    .r st0
    01 st0 st1 0
    -- st1 st2 1
    ...
    .e

Unknown dot-directives are tolerated; ``.s``/``.p`` counts are checked
when present.
"""

from __future__ import annotations

from typing import List, Optional

from ..runtime import ParseError
from .machine import Fsm, Transition

__all__ = ["parse_kiss", "format_kiss"]


def parse_kiss(
    text: str, name: str = "fsm", check_deterministic: bool = True
) -> Fsm:
    """Parse a KISS2 description into an :class:`Fsm`.

    ``check_deterministic=False`` skips the overlapping-row conflict
    check (some historical benchmark files contain benign overlaps).
    """
    n_inputs: Optional[int] = None
    n_outputs: Optional[int] = None
    n_states: Optional[int] = None
    n_terms: Optional[int] = None
    reset: Optional[str] = None
    fsm = Fsm(name)
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            key = parts[0]
            if key in (".i", ".o", ".s", ".p", ".r"):
                if len(parts) < 2:
                    raise ParseError(
                        f"directive {key} needs an argument: {line!r}"
                    )
                try:
                    if key == ".i":
                        n_inputs = int(parts[1])
                    elif key == ".o":
                        n_outputs = int(parts[1])
                    elif key == ".s":
                        n_states = int(parts[1])
                    elif key == ".p":
                        n_terms = int(parts[1])
                    else:
                        reset = parts[1]
                except ValueError as exc:
                    raise ParseError(
                        f"bad directive argument: {line!r}"
                    ) from exc
            elif key in (".e", ".end"):
                break
            continue
        fields = line.split()
        if len(fields) != 4:
            raise ParseError(f"bad KISS row: {line!r}")
        inputs, present, nxt, outputs = fields
        if n_inputs is not None and len(inputs) != n_inputs:
            raise ParseError(f"input width mismatch in row {line!r}")
        if n_outputs is not None and len(outputs) != n_outputs:
            raise ParseError(f"output width mismatch in row {line!r}")
        try:
            fsm.add(inputs, present, nxt, outputs)
        except ValueError as exc:
            raise ParseError(
                f"bad KISS row {line!r}: {exc}"
            ) from exc
    fsm.reset_state = reset
    if not fsm.transitions:
        raise ParseError("KISS file has no transitions")
    if fsm.n_states == 0:
        # every row used the don't-care state marker: nothing to
        # encode, and downstream consumers index fsm.states[0]
        raise ParseError(
            "KISS file has no real states (only don't-care rows)"
        )
    if n_terms is not None and n_terms != len(fsm.transitions):
        raise ParseError(
            f".p says {n_terms} terms, file has {len(fsm.transitions)}"
        )
    if n_states is not None and n_states != fsm.n_states:
        raise ParseError(
            f".s says {n_states} states, file has {fsm.n_states}"
        )
    try:
        fsm.validate()
        if check_deterministic:
            fsm.check_deterministic()
    except ParseError:
        raise
    except ValueError as exc:
        # machine-level validation failures are parse errors when the
        # machine came from text
        raise ParseError(str(exc)) from exc
    return fsm


def format_kiss(fsm: Fsm) -> str:
    """Render an :class:`Fsm` in KISS2 format."""
    lines = [
        f".i {fsm.n_inputs}",
        f".o {fsm.n_outputs}",
        f".p {len(fsm.transitions)}",
        f".s {fsm.n_states}",
    ]
    if fsm.reset_state is not None:
        lines.append(f".r {fsm.reset_state}")
    for t in fsm.transitions:
        lines.append(f"{t.inputs} {t.present} {t.next} {t.outputs}")
    lines.append(".e")
    return "\n".join(lines) + "\n"
