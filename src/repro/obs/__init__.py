"""Observability: tracing spans, counters/gauges, profiling, sinks.

The measurement substrate for every solver in this package:

* :mod:`repro.obs.tracer` — :class:`Tracer` (spans, counters, gauges,
  per-span-name histograms), the zero-cost :data:`NULL_TRACER`, and
  the module-level default installed with :func:`set_tracer`;
* :mod:`repro.obs.sinks` — :class:`MemorySink` (tests/profiling),
  :class:`ConsoleSink` (human-readable), :class:`JsonlSink`
  (JSON-lines files, the CLI's ``--trace PATH``);
* :mod:`repro.obs.profile` — :func:`profile_report`, the per-phase
  breakdown behind ``picola profile`` and ``--profile``.

Like :mod:`repro.runtime` this package is a leaf — solvers may depend
on it without cycles — and the instrumentation seams are the same
loop heads where :class:`~repro.runtime.Budget` is checked, so budget
accounting and metrics share one code path.

Usage::

    from repro.obs import MemorySink, Tracer

    tracer = Tracer(MemorySink())
    result = picola_encode(cset, tracer=tracer)
    print(tracer.counters()["picola.columns"])
"""

from .profile import ProfileReport, profile_report
from .sinks import ConsoleSink, JsonlSink, MemorySink, Sink
from .tracer import (
    NULL_TRACER,
    Histogram,
    NullTracer,
    Span,
    Tracer,
    count,
    gauge,
    get_tracer,
    resolve_tracer,
    set_tracer,
    span,
)

__all__ = [
    "Histogram",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "count",
    "gauge",
    "get_tracer",
    "resolve_tracer",
    "set_tracer",
    "span",
    "Sink",
    "MemorySink",
    "ConsoleSink",
    "JsonlSink",
    "ProfileReport",
    "profile_report",
]
