"""Pluggable tracer sinks: in-memory, console, JSON-lines file.

A sink is anything with ``emit(event: dict)`` (and optionally
``close()``).  The tracer emits one event per completed span as it
closes, plus aggregate ``counters`` / ``gauges`` / ``timings`` events
from :meth:`repro.obs.Tracer.close`.  Event shapes:

``{"type": "span", "name", "parent", "depth", "seconds", "attrs"}``
``{"type": "counters", "values": {name: int}}``
``{"type": "gauges", "values": {name: {last, min, max, n}}}``
``{"type": "timings", "values": {name: {n, total, mean, min, max}}}``
"""

from __future__ import annotations

import io
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional, Union

__all__ = ["Sink", "MemorySink", "ConsoleSink", "JsonlSink"]


class Sink:
    """Interface documentation only; sinks duck-type ``emit``."""

    def emit(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - optional hook
        pass


class MemorySink(Sink):
    """Keeps every event in a list — the test and profiling sink."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    @property
    def spans(self) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["type"] == "span"]

    def counters(self) -> Dict[str, int]:
        for event in reversed(self.events):
            if event["type"] == "counters":
                return dict(event["values"])
        return {}

    def clear(self) -> None:
        self.events.clear()


class ConsoleSink(Sink):
    """Human-readable span lines, indented by nesting depth."""

    def __init__(self, stream: Optional[io.TextIOBase] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def emit(self, event: Dict[str, Any]) -> None:
        if event["type"] == "span":
            indent = "  " * event["depth"]
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(event["attrs"].items())
            )
            suffix = f" [{attrs}]" if attrs else ""
            self.stream.write(
                f"{indent}{event['name']}: "
                f"{1000 * event['seconds']:.3f}ms{suffix}\n"
            )
        elif event["type"] == "counters" and event["values"]:
            self.stream.write("counters:\n")
            for name, value in sorted(event["values"].items()):
                self.stream.write(f"  {name} = {value}\n")


class JsonlSink(Sink):
    """One JSON object per line; parseable back with ``json.loads``."""

    def __init__(
        self, target: Union[str, pathlib.Path, io.TextIOBase]
    ) -> None:
        if isinstance(target, (str, pathlib.Path)):
            self._handle: Any = open(target, "w")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def emit(self, event: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(event, default=str) + "\n")

    def flush(self) -> None:
        """Push buffered lines to the file — streaming consumers
        (``tail -f`` on a ``--stream`` results file) need each line
        visible as soon as it is emitted, not at close."""
        self._handle.flush()

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()
