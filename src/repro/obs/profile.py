"""Per-phase profile reports built from a tracer's aggregates.

``profile_report(tracer)`` snapshots the tracer's span-duration
histograms, counters and gauges into a :class:`ProfileReport`, whose
``render()`` prints the per-phase time/counter breakdown used by
``picola profile`` and the ``--profile`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from .tracer import Tracer

__all__ = ["ProfileReport", "profile_report"]


def _render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str,
) -> str:
    """Minimal aligned table (obs is a leaf: no harness imports)."""

    def fmt(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    table = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        out = [cells[0].ljust(widths[0])]
        out += [c.rjust(widths[i + 1]) for i, c in enumerate(cells[1:])]
        return "  ".join(out).rstrip()

    parts: List[str] = [title, "=" * len(title), line(headers),
                        line(["-" * w for w in widths])]
    parts += [line(row) for row in table]
    return "\n".join(parts)


@dataclass
class ProfileReport:
    """Aggregated phase timings and counters of one traced run."""

    timings: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "timings": {k: dict(v) for k, v in self.timings.items()},
            "counters": dict(self.counters),
            "gauges": {k: dict(v) for k, v in self.gauges.items()},
        }

    def render(self) -> str:
        parts = []
        if self.timings:
            rows = [
                [
                    name,
                    hist["n"],
                    hist["total"],
                    1000.0 * hist["mean"],
                    1000.0 * (hist["max"] or 0.0),
                ]
                for name, hist in sorted(
                    self.timings.items(),
                    key=lambda item: -item[1]["total"],
                )
            ]
            parts.append(_render_table(
                ["phase", "calls", "total(s)", "mean(ms)", "max(ms)"],
                rows,
                title="Profile - per-phase wall clock",
            ))
        if self.counters:
            rows = [
                [name, value]
                for name, value in sorted(self.counters.items())
            ]
            parts.append(_render_table(
                ["counter", "value"], rows,
                title="Profile - counters",
            ))
        if self.gauges:
            rows = [
                [name, g["last"], g["min"], g["max"]]
                for name, g in sorted(self.gauges.items())
            ]
            parts.append(_render_table(
                ["gauge", "last", "min", "max"], rows,
                title="Profile - gauges",
            ))
        if not parts:
            return "Profile - no spans or counters recorded"
        return "\n\n".join(parts)


def profile_report(tracer: Tracer) -> ProfileReport:
    """Snapshot a tracer's aggregates into a :class:`ProfileReport`."""
    return ProfileReport(
        timings={
            name: hist.to_dict()
            for name, hist in tracer.timings().items()
        },
        counters=tracer.counters(),
        gauges=tracer.gauges(),
    )
