"""Hierarchical tracing spans, typed counters/gauges and histograms.

A :class:`Tracer` is the single object solvers talk to:

* ``with tracer.span("picola/column", col=j):`` opens a *span* — a
  named, attributed, wall-clock-timed region.  Spans nest; each
  completed span is emitted to every attached sink together with its
  depth and parent name, and its duration feeds a per-name
  :class:`Histogram`.
* ``tracer.count("exact.nodes", 128)`` bumps a *counter* — a
  monotonically increasing named integer.
* ``tracer.gauge("espresso.cubes_after_expand", len(cover))`` records
  the latest value of a named quantity (min/max/last are kept).

Everything is zero-dependency and cheap.  When tracing is off the
module-level :data:`NULL_TRACER` singleton is used instead: all of its
methods are no-ops, ``span()`` returns one shared reusable context
manager, and nothing is allocated — so an instrumented loop head costs
one method call (bounded by tests/test_obs.py's microbenchmark).

Solvers accept ``tracer=None`` and resolve it via
:func:`resolve_tracer`, which falls back to the process-wide default
installed with :func:`set_tracer` (the CLI's ``--trace``/``--profile``
flags use exactly that hook).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Histogram",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "count",
    "gauge",
    "get_tracer",
    "resolve_tracer",
    "set_tracer",
    "span",
]


class Histogram:
    """Streaming summary of a series of values (durations, sizes)."""

    __slots__ = ("n", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        self.n += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Histogram(n={self.n}, total={self.total:.6f}, "
            f"mean={self.mean:.6f})"
        )


class _NullSpan:
    """The reusable no-op span; one shared instance, never allocated."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """A tracer that records nothing; every method is a no-op.

    Used as the module default so instrumented code never needs an
    ``if tracer is not None`` guard: the disabled hot path is one
    no-op method call.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> int:
        return 0

    def counters(self) -> Dict[str, int]:
        return {}

    def gauges(self) -> Dict[str, Dict[str, float]]:
        return {}

    def timings(self) -> Dict[str, Histogram]:
        return {}

    def adopt(
        self,
        spans: Any,
        counters: Optional[Dict[str, int]] = None,
        gauges: Optional[Dict[str, Dict[str, float]]] = None,
        root: Optional[Dict[str, Any]] = None,
    ) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class Span:
    """One live traced region; use as a context manager."""

    __slots__ = ("tracer", "name", "attrs", "depth", "parent",
                 "start", "seconds")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, Any],
        depth: int,
        parent: Optional[str],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = depth
        self.parent = parent
        self.start = 0.0
        self.seconds: Optional[float] = None

    def set(self, **attrs: Any) -> None:
        """Attach or update attributes of the live span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.tracer._enter(self)
        return self

    def __exit__(self, *exc: object) -> bool:
        self.tracer._exit(self)
        return False


class Tracer:
    """Collects spans, counters and gauges; fans events out to sinks.

    Sinks receive one dict per completed span (``type="span"``) as it
    closes, plus aggregate ``counters``/``gauges``/``timings`` events
    when :meth:`close` is called.  The tracer itself keeps the
    aggregates, so a sink-less ``Tracer()`` still supports
    :meth:`counters` / :meth:`timings` / profiling.

    One tracer may be shared across threads — ``picola serve`` has its
    handler threads and the batching thread count against the same
    instance.  The aggregates (counters, gauges, histograms, sink
    emission, close) are guarded by one re-entrant lock; the span
    stack is **thread-local**, so concurrent spans nest per thread
    instead of corrupting each other's depth/parent chains.  The
    :class:`NullTracer` fast path stays lock-free.
    """

    enabled = True

    def __init__(
        self,
        *sinks: Any,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._sinks = list(sinks)
        self._clock = clock
        # RLock, not Lock: adopt() calls count() while holding it
        self._lock = threading.RLock()
        self._local = threading.local()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Dict[str, float]] = {}
        self._timings: Dict[str, Histogram] = {}
        self._closed = False

    # -- spans ---------------------------------------------------------
    @property
    def _stack(self) -> List[Span]:
        """This thread's span stack (created lazily per thread)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack
    def span(self, name: str, **attrs: Any) -> Span:
        parent = self._stack[-1].name if self._stack else None
        return Span(self, name, attrs, len(self._stack), parent)

    def _enter(self, span: Span) -> None:
        span.depth = len(self._stack)
        span.parent = self._stack[-1].name if self._stack else None
        self._stack.append(span)
        span.start = self._clock()

    def _exit(self, span: Span) -> None:
        span.seconds = self._clock() - span.start
        stack = self._stack  # thread-local: no lock needed
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            hist = self._timings.get(span.name)
            if hist is None:
                hist = self._timings[span.name] = Histogram()
            hist.add(span.seconds)
            if self._sinks:
                event = {
                    "type": "span",
                    "name": span.name,
                    "parent": span.parent,
                    "depth": span.depth,
                    "seconds": span.seconds,
                    "attrs": span.attrs,
                }
                for sink in self._sinks:
                    sink.emit(event)

    # -- counters and gauges -------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                self._gauges[name] = {
                    "last": value, "min": value, "max": value, "n": 1,
                }
            else:
                g["last"] = value
                g["n"] += 1
                if value < g["min"]:
                    g["min"] = value
                if value > g["max"]:
                    g["max"] = value

    # -- adoption of foreign (worker-process) events --------------------
    def adopt(
        self,
        spans: Any,
        counters: Optional[Dict[str, int]] = None,
        gauges: Optional[Dict[str, Dict[str, float]]] = None,
        root: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Absorb events recorded by *another* tracer — typically one
        that lived in a worker process of the parallel harness engine.

        ``spans`` are raw span event dicts (the :class:`MemorySink`
        shape); they are re-emitted to this tracer's sinks with their
        depth shifted under the current stack and, when ``root`` is
        given, orphan spans re-parented to ``root["name"]``.  ``root``
        itself (a synthetic span event, e.g. one ``parallel/unit`` per
        benchmark) is emitted last, matching the spans-close-inside-out
        ordering sinks already expect.  Span durations feed the same
        per-name histograms as native spans, and ``counters`` /
        ``gauges`` aggregates merge into this tracer's, so
        ``--profile`` reports are whole-run coherent regardless of
        which process did the work.
        """
        stack = self._stack  # thread-local
        base = len(stack)
        shift = base + (1 if root is not None else 0)
        root_name = root["name"] if root is not None else None
        events: List[Dict[str, Any]] = []
        for event in spans:
            ev = dict(event)
            ev["depth"] = int(event.get("depth", 0)) + shift
            if ev.get("parent") is None:
                ev["parent"] = root_name
            events.append(ev)
        if root is not None:
            ev = dict(root)
            ev.setdefault("type", "span")
            ev.setdefault("attrs", {})
            ev["depth"] = base
            ev["parent"] = stack[-1].name if stack else None
            events.append(ev)
        with self._lock:
            for ev in events:
                hist = self._timings.get(ev["name"])
                if hist is None:
                    hist = self._timings[ev["name"]] = Histogram()
                hist.add(ev["seconds"])
                for sink in self._sinks:
                    sink.emit(ev)
            for name, value in (counters or {}).items():
                self.count(name, value)
            for name, g in (gauges or {}).items():
                mine = self._gauges.get(name)
                if mine is None:
                    self._gauges[name] = dict(g)
                else:
                    mine["last"] = g["last"]
                    mine["n"] += g["n"]
                    if g["min"] < mine["min"]:
                        mine["min"] = g["min"]
                    if g["max"] > mine["max"]:
                        mine["max"] = g["max"]

    # -- snapshots -----------------------------------------------------
    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {k: dict(v) for k, v in self._gauges.items()}

    def timings(self) -> Dict[str, Histogram]:
        with self._lock:
            return dict(self._timings)

    def close(self) -> None:
        """Emit the aggregate events and close every sink (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._sinks:
                for event in (
                    {"type": "counters", "values": self.counters()},
                    {"type": "gauges", "values": self.gauges()},
                    {
                        "type": "timings",
                        "values": {
                            k: v.to_dict()
                            for k, v in self._timings.items()
                        },
                    },
                ):
                    for sink in self._sinks:
                        sink.emit(event)
            for sink in self._sinks:
                close = getattr(sink, "close", None)
                if close is not None:
                    close()


# ----------------------------------------------------------------------
# module-level default tracer
# ----------------------------------------------------------------------
_current: Any = NULL_TRACER


def get_tracer() -> Any:
    """The process-wide default tracer (NULL_TRACER unless installed)."""
    return _current


def set_tracer(tracer: Optional[Any]) -> Any:
    """Install (or, with ``None``, uninstall) the default tracer."""
    global _current
    _current = tracer if tracer is not None else NULL_TRACER
    return _current


def resolve_tracer(tracer: Optional[Any]) -> Any:
    """What the solvers call: explicit tracer, else the module default."""
    return tracer if tracer is not None else _current


def span(name: str, **attrs: Any) -> Any:
    """Open a span on the default tracer."""
    return _current.span(name, **attrs)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the default tracer."""
    _current.count(name, n)


def gauge(name: str, value: float) -> None:
    """Record a gauge on the default tracer."""
    _current.gauge(name, value)
