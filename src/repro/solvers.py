"""A unified solver registry: every encoder behind one ``Solver`` API.

The harness historically dispatched on method names with if/elif
chains, and each encoder had its own calling convention (``picola``
takes a :class:`~repro.core.PicolaOptions`, ``mustang`` wants the raw
:class:`~repro.fsm.Fsm`, ``exact`` a node budget...).  This module
normalizes all of that behind one protocol::

    solver = get_solver("picola")
    result = solver.solve(symbols, constraints,
                          options={...}, budget=..., tracer=...)
    result.encoding       # the Encoding
    result.seconds        # wall clock of the encode step
    result.stats["nodes"] # solver work in its natural unit

Uniform signature (every registered solver)::

    solve(symbols, constraints=None, *,
          options=None, budget=None, deadline=None, tracer=None)
          -> EncodeResult

``symbols`` may be a prebuilt :class:`ConstraintSet` (then
``constraints`` must be omitted) or a plain sequence of symbol names
with ``constraints`` the face-constraint collection.  ``deadline`` is
a convenience: a bare :class:`~repro.runtime.Deadline` is wrapped into
a :class:`~repro.runtime.Budget` for solvers that only understand
budgets.  Solver-specific knobs ride in the ``options`` mapping (see
each adapter's docstring); unknown keys raise ``TypeError`` so typos
do not silently change an experiment.

The adapters *delegate* to the historical entry points
(:func:`picola_encode`, :func:`exact_encode`, ...) — those remain the
implementation and stay importable; positional ``nv`` on
``exact_encode``/``nova_encode`` (deprecated in 1.1.0) raises
``TypeError`` since 1.6.0 in favour of ``options={"nv": ...}`` here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from .baselines.enc import enc_encode
from .baselines.mustang import mustang_encode
from .baselines.nova import nova_encode, state_affinity
from .baselines.simple import (
    gray_encoding,
    natural_encoding,
    random_encoding,
)
from .core.picola import PicolaOptions, picola_encode
from .encoding.codes import Encoding
from .encoding.constraints import ConstraintSet, FaceConstraint
from .encoding.exact import exact_encode
from .obs import Tracer, resolve_tracer
from .runtime import Budget, Deadline, faults

__all__ = [
    "EncodeResult",
    "Solver",
    "get_solver",
    "list_solvers",
    "register_solver",
]


@dataclass
class EncodeResult:
    """What every solver returns: encoding + timing + typed stats.

    ``stats`` always carries ``"nodes"`` — the solver's work in its
    natural unit (beam states for picola, search nodes for exact,
    anneal moves for nova/mustang, constraint minimizations for enc,
    0 for the trivial encoders).  ``raw`` is the solver's native
    result object for callers that need method-specific fields.
    """

    solver: str
    encoding: Encoding
    seconds: float
    stats: Dict[str, Any] = field(default_factory=dict)
    raw: Any = None

    @property
    def nodes(self) -> int:
        return int(self.stats.get("nodes", 0))


def _as_constraint_set(
    symbols: Union[ConstraintSet, Sequence[str]],
    constraints: Optional[Sequence[FaceConstraint]],
) -> ConstraintSet:
    if isinstance(symbols, ConstraintSet):
        if constraints is not None:
            raise ValueError(
                "pass constraints inside the ConstraintSet, not both"
            )
        return symbols
    return ConstraintSet(symbols, constraints or ())


def _as_budget(
    budget: Optional[Budget], deadline: Optional[Deadline]
) -> Optional[Budget]:
    if deadline is None:
        return budget
    if budget is not None:
        raise ValueError("pass budget or deadline, not both")
    return Budget(deadline=deadline)


class Solver:
    """Base class of every registry entry.

    Subclasses implement :meth:`_run`; :meth:`solve` provides the
    uniform signature, argument normalization, option validation and
    wall-clock timing.
    """

    #: registry key; subclasses override
    name: str = ""
    #: option keys this solver understands
    option_keys: Tuple[str, ...] = ()

    def solve(
        self,
        symbols: Union[ConstraintSet, Sequence[str]],
        constraints: Optional[Sequence[FaceConstraint]] = None,
        *,
        options: Optional[Mapping[str, Any]] = None,
        budget: Optional[Budget] = None,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> EncodeResult:
        cset = _as_constraint_set(symbols, constraints)
        budget = _as_budget(budget, deadline)
        # the registry-wide budget seam: fault-injection tests and the
        # fuzz harness arm this site to prove degradation end to end
        faults.trip("solver.solve", self.name)
        opts = dict(options or {})
        unknown = set(opts) - set(self.option_keys)
        if unknown:
            raise TypeError(
                f"solver {self.name!r} does not understand options "
                f"{sorted(unknown)}; known: {sorted(self.option_keys)}"
            )
        tracer = resolve_tracer(tracer)
        t0 = time.perf_counter()
        encoding, stats, raw = self._run(cset, opts, budget, tracer)
        seconds = time.perf_counter() - t0
        stats.setdefault("nodes", 0)
        return EncodeResult(
            solver=self.name,
            encoding=encoding,
            seconds=seconds,
            stats=stats,
            raw=raw,
        )

    def _run(
        self,
        cset: ConstraintSet,
        opts: Dict[str, Any],
        budget: Optional[Budget],
        tracer,
    ) -> Tuple[Encoding, Dict[str, Any], Any]:
        raise NotImplementedError

    @staticmethod
    def _counting(tracer):
        """A tracer whose counters we may read back.

        When the caller's tracer is live it is used directly (the
        counts land in the shared aggregates); when tracing is off a
        private sink-less :class:`Tracer` supplies the node counts
        without touching the global no-op path.
        """
        return tracer if tracer.enabled else Tracer()


class PicolaSolver(Solver):
    """PICOLA (the paper's algorithm).

    Options: ``nv`` (code length), ``picola_options``
    (:class:`PicolaOptions`), ``seed`` (accepted for uniformity,
    unused — PICOLA is deterministic).
    """

    name = "picola"
    option_keys = ("nv", "picola_options", "seed")

    def _run(self, cset, opts, budget, tracer):
        t = self._counting(tracer)
        before = t.counter("picola.beam_states")
        result = picola_encode(
            cset,
            nv=opts.get("nv"),
            options=opts.get("picola_options"),
            budget=budget,
            tracer=t,
        )
        stats = {
            "nodes": t.counter("picola.beam_states") - before,
            "satisfied": len(result.satisfied),
            "guided": len(result.infeasible),
        }
        return result.encoding, stats, result


class ExactSolver(Solver):
    """Branch-and-bound optimum (reference).

    Options: ``nv``, ``max_nodes``, ``strict``, ``seed`` (unused).
    """

    name = "exact"
    option_keys = ("nv", "max_nodes", "strict", "seed")

    def _run(self, cset, opts, budget, tracer):
        kwargs: Dict[str, Any] = {"nv": opts.get("nv")}
        if "max_nodes" in opts:
            kwargs["max_nodes"] = opts["max_nodes"]
        if "strict" in opts:
            kwargs["strict"] = opts["strict"]
        result = exact_encode(
            cset, budget=budget, tracer=tracer, **kwargs
        )
        stats = {
            "nodes": result.nodes,
            "satisfied": result.satisfied,
            "optimal": result.optimal,
        }
        return result.encoding, stats, result


class NovaSolver(Solver):
    """NOVA-style baseline.

    Options: ``nv``, ``variant`` (``i_greedy``/``i_hybrid``/
    ``io_hybrid``), ``seed``, ``anneal_moves``, ``affinity`` (pair
    weights), or ``fsm`` — with ``io_hybrid``, the affinity matrix is
    derived from it via :func:`state_affinity` when not given.
    """

    name = "nova"
    option_keys = (
        "nv", "variant", "seed", "anneal_moves", "affinity", "fsm",
    )

    def _run(self, cset, opts, budget, tracer):
        variant = opts.get("variant", "i_hybrid")
        affinity = opts.get("affinity")
        if (
            affinity is None
            and variant == "io_hybrid"
            and opts.get("fsm") is not None
        ):
            affinity = state_affinity(opts["fsm"])
        t = self._counting(tracer)
        before = t.counter("nova.moves")
        result = nova_encode(
            cset,
            nv=opts.get("nv"),
            variant=variant,
            affinity=affinity,
            seed=opts.get("seed", 0),
            anneal_moves=opts.get("anneal_moves", 4000),
            budget=budget,
            tracer=t,
        )
        stats = {
            "nodes": t.counter("nova.moves") - before,
            "satisfied": result.satisfied,
            "objective": result.objective,
        }
        return result.encoding, stats, result


class MustangSolver(Solver):
    """MUSTANG-style baseline; needs the FSM (``options["fsm"]``).

    Options: ``fsm`` (required), ``nv``, ``variant`` (``p``/``n``),
    ``seed``, ``anneal_moves``.
    """

    name = "mustang"
    option_keys = ("fsm", "nv", "variant", "seed", "anneal_moves")

    def _run(self, cset, opts, budget, tracer):
        fsm = opts.get("fsm")
        if fsm is None:
            raise TypeError(
                "solver 'mustang' needs options={'fsm': <Fsm>} — it "
                "encodes the attraction graph of the machine, not the "
                "face constraints"
            )
        t = self._counting(tracer)
        before = t.counter("mustang.moves")
        result = mustang_encode(
            fsm,
            opts.get("nv", cset.min_code_length()),
            variant=opts.get("variant", "p"),
            seed=opts.get("seed", 0),
            anneal_moves=opts.get("anneal_moves", 3000),
            budget=budget,
            tracer=t,
        )
        stats = {
            "nodes": t.counter("mustang.moves") - before,
            "attraction": result.attraction,
        }
        return result.encoding, stats, result


class EncSolver(Solver):
    """ENC-style minimizer-in-the-loop baseline.

    Options: ``nv``, ``seed``, ``max_minimizations``, ``max_passes``,
    ``strict``.
    """

    name = "enc"
    option_keys = (
        "nv", "seed", "max_minimizations", "max_passes", "strict",
    )

    def _run(self, cset, opts, budget, tracer):
        kwargs: Dict[str, Any] = {
            "nv": opts.get("nv"),
            "seed": opts.get("seed", 0),
        }
        for key in ("max_minimizations", "max_passes", "strict"):
            if key in opts:
                kwargs[key] = opts[key]
        result = enc_encode(
            cset, budget=budget, tracer=tracer, **kwargs
        )
        stats = {
            "nodes": result.minimizations,
            "minimizations": result.minimizations,
            "converged": result.converged,
            "total_cubes": result.total_cubes,
        }
        return result.encoding, stats, result


class SimpleSolver(Solver):
    """The trivial encoders (natural / gray / random).

    Options: ``scheme`` (default ``natural``), ``nv``, ``seed``
    (random scheme only).
    """

    name = "simple"
    option_keys = ("scheme", "nv", "seed")

    _SCHEMES = ("natural", "gray", "random")

    def _run(self, cset, opts, budget, tracer):
        scheme = opts.get("scheme", "natural")
        if scheme not in self._SCHEMES:
            raise ValueError(
                f"unknown simple scheme {scheme!r}; "
                f"choose from {self._SCHEMES}"
            )
        symbols = list(cset.symbols)
        nv = opts.get("nv")
        with tracer.span("simple/encode", scheme=scheme):
            if scheme == "natural":
                encoding = natural_encoding(symbols, nv)
            elif scheme == "gray":
                encoding = gray_encoding(symbols, nv)
            else:
                encoding = random_encoding(
                    symbols, nv, seed=opts.get("seed", 0)
                )
        return encoding, {"nodes": 0, "scheme": scheme}, encoding


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Solver] = {}


def register_solver(solver: Solver, *, replace: bool = False) -> Solver:
    """Add a :class:`Solver` instance to the registry by its name."""
    if not solver.name:
        raise ValueError("solver needs a non-empty name")
    if solver.name in _REGISTRY and not replace:
        raise ValueError(
            f"solver {solver.name!r} already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[solver.name] = solver
    return solver


def get_solver(name: str) -> Solver:
    """Look a solver up by name; raises ``KeyError`` with the menu."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; available: {list_solvers()}"
        ) from None


def list_solvers() -> Tuple[str, ...]:
    """The registered solver names, sorted."""
    return tuple(sorted(_REGISTRY))


for _solver in (
    PicolaSolver(),
    ExactSolver(),
    NovaSolver(),
    MustangSolver(),
    EncSolver(),
    SimpleSolver(),
):
    register_solver(_solver)
del _solver
