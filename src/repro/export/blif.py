"""BLIF export of minimized machines and bare PLAs.

Berkeley Logic Interchange Format is what SIS-era flows exchange; a
downstream user who state-assigns with this package almost certainly
wants to continue in such a flow.  Two writers:

* :func:`pla_to_blif` — a combinational ``.names``-per-output model of
  a (minimized) multi-output PLA;
* :func:`assignment_to_blif` — the full sequential machine: one
  ``.latch`` per state bit plus the combinational next-state/output
  logic from the assignment's minimized PLA.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..espresso import Pla
from ..stateassign.tool import AssignmentResult

__all__ = ["pla_to_blif", "assignment_to_blif"]


def _input_chars(pla: Pla, cube: int) -> str:
    space = pla.space
    chars = []
    for part in range(pla.n_inputs):
        field = space.field(cube, part)
        chars.append({0b01: "0", 0b10: "1", 0b11: "-"}[field])
    return "".join(chars)


def pla_to_blif(
    pla: Pla,
    model: str = "pla",
    input_names: Optional[Sequence[str]] = None,
    output_names: Optional[Sequence[str]] = None,
) -> str:
    """Render a PLA as a combinational BLIF model."""
    if input_names is None:
        input_names = pla.input_labels or [
            f"x{i}" for i in range(pla.n_inputs)
        ]
    if output_names is None:
        output_names = pla.output_labels or [
            f"z{o}" for o in range(pla.n_outputs)
        ]
    if len(input_names) != pla.n_inputs:
        raise ValueError("need one name per input")
    if len(output_names) != pla.n_outputs:
        raise ValueError("need one name per output")
    lines = [
        f".model {model}",
        ".inputs " + " ".join(input_names),
        ".outputs " + " ".join(output_names),
    ]
    out_part = pla.space.num_parts - 1
    for o, name in enumerate(output_names):
        rows = [
            _input_chars(pla, cube)
            for cube in pla.onset
            if pla.space.field(cube, out_part) & (1 << o)
        ]
        lines.append(".names " + " ".join(input_names) + f" {name}")
        for row in rows:
            lines.append(f"{row} 1")
        if not rows:
            # constant zero: an empty .names block means 0 in BLIF,
            # but be explicit for tool compatibility
            lines.append("")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def assignment_to_blif(
    result: AssignmentResult, model: Optional[str] = None
) -> str:
    """Render a state assignment as a sequential BLIF model."""
    fsm = result.fsm
    enc = result.encoding
    pla = result.minimized
    n_bits = enc.n_bits
    if model is None:
        model = fsm.name
    inputs = [f"x{i}" for i in range(fsm.n_inputs)]
    states_cur = [f"s{b}" for b in range(n_bits)]
    states_nxt = [f"ns{b}" for b in range(n_bits)]
    outputs = [f"z{o}" for o in range(fsm.n_outputs)]
    reset_code = (
        enc.code_of(fsm.reset_state)
        if fsm.reset_state is not None
        else 0
    )

    body = pla_to_blif(
        pla,
        model="__ignored__",
        input_names=inputs + states_cur,
        output_names=states_nxt + outputs,
    ).splitlines()
    # keep only the .names blocks of the combinational body
    names_start = next(
        i for i, line in enumerate(body) if line.startswith(".names")
    )
    names_block = body[names_start:-1]  # drop .end

    lines = [
        f".model {model}",
        ".inputs " + " ".join(inputs),
        ".outputs " + " ".join(outputs),
    ]
    for b in range(n_bits):
        init = (reset_code >> (n_bits - 1 - b)) & 1
        lines.append(f".latch ns{b} s{b} re clk {init}")
    lines.extend(names_block)
    lines.append(".end")
    return "\n".join(lines) + "\n"
