"""Netlist exporters: BLIF (SIS-era flows) and flat Verilog RTL."""

from .blif import assignment_to_blif, pla_to_blif
from .verilog import assignment_to_verilog

__all__ = ["assignment_to_blif", "pla_to_blif", "assignment_to_verilog"]
